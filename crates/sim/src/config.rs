//! System configuration: every parameter of Table 2 of the paper.
//!
//! The defaults reproduce the simulated heterogeneous system of the paper:
//! a 4×4 mesh with CPU cores and GPU compute units at its nodes, a shared
//! banked NUCA L2, per-GPU-core L1 + 16 KB scratchpad/stash, and the DeNovo
//! coherence protocol.

use crate::clock::ClockDomain;

/// Full system configuration (Table 2 of the paper).
///
/// Construct with [`SystemConfig::default`] for the paper's parameters, or
/// use the `for_microbenchmarks` / `for_applications` presets which select
/// the paper's core counts (15 CPU + 1 CU for microbenchmarks, 1 CPU +
/// 15 CUs for applications).
///
/// # Example
///
/// ```
/// use sim::config::SystemConfig;
///
/// let cfg = SystemConfig::for_microbenchmarks();
/// assert_eq!(cfg.gpu_cus, 1);
/// assert_eq!(cfg.cpu_cores, 15);
/// assert_eq!(cfg.gpu_cus + cfg.cpu_cores, cfg.mesh_nodes());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// CPU clock (2 GHz in the paper).
    pub cpu_clock: ClockDomain,
    /// GPU clock (700 MHz in the paper).
    pub gpu_clock: ClockDomain,
    /// Number of CPU cores on the mesh.
    pub cpu_cores: usize,
    /// Number of GPU compute units (CUs) on the mesh.
    pub gpu_cus: usize,
    /// Mesh side length; the paper uses a 4×4 mesh (16 nodes). Agents
    /// beyond the node count co-locate (core `i` sits on tile
    /// `i % nodes`), so a small mesh can still host the paper's 16 cores.
    pub mesh_side: usize,
    /// Scratchpad/stash capacity per CU in bytes (16 KB).
    pub scratchpad_bytes: usize,
    /// Number of banks in the scratchpad and the stash (32).
    pub local_banks: usize,
    /// L1 cache capacity in bytes (32 KB).
    pub l1_bytes: usize,
    /// L1 associativity (8-way).
    pub l1_ways: usize,
    /// L1 banks (8).
    pub l1_banks: usize,
    /// Cache line size in bytes (64 B, i.e. 16 four-byte words).
    pub line_bytes: usize,
    /// Shared L2 capacity in bytes (4 MB NUCA).
    pub l2_bytes: usize,
    /// L2 bank count (16, one per mesh node). Bank counts above the node
    /// count co-locate several banks per tile; below it, the low tiles
    /// host the banks.
    pub l2_banks: usize,
    /// Consecutive lines mapped to one bank before the interleave moves to
    /// the next (1 = classic line interleave).
    pub l2_interleave_lines: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L1 and stash hit latency in cycles (1).
    pub l1_hit_cycles: u64,
    /// Stash address-translation latency applied on misses (10 cycles).
    pub stash_translation_cycles: u64,
    /// Base L2 access latency at distance zero; the paper's 29–61-cycle
    /// range emerges from this base plus mesh hops.
    pub l2_base_cycles: u64,
    /// Additional round-trip latency per one-way mesh hop in the X
    /// dimension. With a 4×4 mesh (max 6 hops) and base 29 this yields the
    /// paper's 29–61 range (not exactly 61 — 29 + 6·5 = 59 — but within
    /// the published band).
    pub hop_round_trip_cycles: u64,
    /// Round-trip latency per Y-dimension hop. The paper's mesh is
    /// symmetric (equal to `hop_round_trip_cycles`); the design-space
    /// sweep also explores meshes with faster row links than column links.
    pub hop_round_trip_cycles_y: u64,
    /// Extra latency a request pays at the memory controller beyond the L2
    /// path; 168 extra cycles turns 29–61 into the paper's 197–261 band
    /// (197–227 from the L2 path plus controller-distance jitter).
    pub dram_extra_cycles: u64,
    /// Base latency for a remote L1/stash hit (three-leg forwarding).
    /// The paper's observed range is 35–83 cycles.
    pub remote_base_cycles: u64,
    /// TLB and reverse-TLB (VP-map) entries, each (64).
    pub vp_map_entries: usize,
    /// Stash-map entries (64).
    pub stash_map_entries: usize,
    /// Maximum AddMap calls (map-index-table entries) per thread block (4).
    pub max_maps_per_thread_block: usize,
    /// Page size in bytes (4 KB).
    pub page_bytes: usize,
    /// Threads per thread block used by the workloads (256 ⇒ 8 warps).
    pub threads_per_block: usize,
    /// Warp width (32 lanes).
    pub warp_size: usize,
    /// Maximum thread blocks resident on one CU at a time (8).
    pub max_blocks_per_cu: usize,
    /// Maximum outstanding misses per CU (MSHR-like limit).
    pub max_outstanding_misses: usize,
    /// Writeback chunk granularity for the stash in bytes (64 B).
    pub stash_chunk_bytes: usize,
    /// Fixed GPU cycles per kernel launch (driver + dispatch overhead;
    /// a few microseconds on Fermi-class hardware).
    pub kernel_launch_cycles: u64,
    /// Global scale on the per-event energy constants, in percent
    /// (100 = the Table 3 process node). Energy is linear in its
    /// constants, so this dimension is provably monotone for the
    /// design-space sweep and never needs simulation to rank.
    pub energy_scale_pct: u64,
}

impl SystemConfig {
    /// The paper's microbenchmark machine: 1 GPU CU and 15 CPU cores.
    pub fn for_microbenchmarks() -> Self {
        Self {
            cpu_cores: 15,
            gpu_cus: 1,
            ..Self::default()
        }
    }

    /// The paper's application machine: 15 GPU CUs and 1 CPU core.
    pub fn for_applications() -> Self {
        Self {
            cpu_cores: 1,
            gpu_cus: 15,
            ..Self::default()
        }
    }

    /// Total number of mesh nodes (`mesh_side`²).
    pub fn mesh_nodes(&self) -> usize {
        self.mesh_side * self.mesh_side
    }

    /// Number of 4-byte words in one cache line.
    pub fn words_per_line(&self) -> usize {
        self.line_bytes / 4
    }

    /// Number of warps in one thread block.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block / self.warp_size
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint: the machine must
    /// have at least one agent and one mesh node (agents co-locate when
    /// they outnumber nodes), sizes must be powers of two where the
    /// hardware requires it, and the line size must be a multiple of the
    /// word size.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpu_cores + self.gpu_cus == 0 {
            return Err("the machine needs at least one CPU core or GPU CU".into());
        }
        if self.mesh_side == 0 {
            return Err("mesh_side must be at least 1".into());
        }
        for (name, v) in [
            ("line_bytes", self.line_bytes),
            ("l1_bytes", self.l1_bytes),
            ("l2_bytes", self.l2_bytes),
            ("page_bytes", self.page_bytes),
            ("scratchpad_bytes", self.scratchpad_bytes),
        ] {
            if !v.is_power_of_two() {
                return Err(format!("{name} ({v}) must be a power of two"));
            }
        }
        if !self.line_bytes.is_multiple_of(4) {
            return Err("line_bytes must be a multiple of the 4-byte word".into());
        }
        if !self.stash_chunk_bytes.is_multiple_of(4)
            || self.stash_chunk_bytes > self.scratchpad_bytes
        {
            return Err("stash_chunk_bytes must be word-aligned and fit the stash".into());
        }
        if !self.threads_per_block.is_multiple_of(self.warp_size) {
            return Err("threads_per_block must be a whole number of warps".into());
        }
        if self.l2_banks == 0 {
            return Err("l2_banks must be at least 1".into());
        }
        if self.l2_interleave_lines == 0 {
            return Err("l2_interleave_lines must be at least 1".into());
        }
        if self.energy_scale_pct == 0 {
            return Err("energy_scale_pct must be at least 1".into());
        }
        Ok(())
    }

    /// Serializes every configuration field, in declaration order.
    pub fn save(&self, w: &mut crate::snapshot::Writer) {
        w.put_u64(self.cpu_clock.mhz());
        w.put_u64(self.gpu_clock.mhz());
        w.put_usize(self.cpu_cores);
        w.put_usize(self.gpu_cus);
        w.put_usize(self.mesh_side);
        w.put_usize(self.scratchpad_bytes);
        w.put_usize(self.local_banks);
        w.put_usize(self.l1_bytes);
        w.put_usize(self.l1_ways);
        w.put_usize(self.l1_banks);
        w.put_usize(self.line_bytes);
        w.put_usize(self.l2_bytes);
        w.put_usize(self.l2_banks);
        w.put_u64(self.l2_interleave_lines);
        w.put_usize(self.l2_ways);
        w.put_u64(self.l1_hit_cycles);
        w.put_u64(self.stash_translation_cycles);
        w.put_u64(self.l2_base_cycles);
        w.put_u64(self.hop_round_trip_cycles);
        w.put_u64(self.hop_round_trip_cycles_y);
        w.put_u64(self.dram_extra_cycles);
        w.put_u64(self.remote_base_cycles);
        w.put_usize(self.vp_map_entries);
        w.put_usize(self.stash_map_entries);
        w.put_usize(self.max_maps_per_thread_block);
        w.put_usize(self.page_bytes);
        w.put_usize(self.threads_per_block);
        w.put_usize(self.warp_size);
        w.put_usize(self.max_blocks_per_cu);
        w.put_usize(self.max_outstanding_misses);
        w.put_usize(self.stash_chunk_bytes);
        w.put_u64(self.kernel_launch_cycles);
        w.put_u64(self.energy_scale_pct);
    }

    /// A stable 64-bit content hash of the configuration: FNV-1a over the
    /// canonical [`SystemConfig::save`] byte encoding, so two configs hash
    /// equal iff every field is equal, across processes and builds. This
    /// is the config component of the daemon's content-addressed
    /// result-cache key.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        let mut w = crate::snapshot::Writer::new();
        self.save(&mut w);
        crate::snapshot::fnv1a(&w.into_bytes())
    }

    /// Restores a configuration written by [`SystemConfig::save`] and
    /// re-validates it (a snapshot carrying an invalid config is corrupt).
    pub fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::SimError> {
        let cfg = Self {
            cpu_clock: ClockDomain::from_mhz(r.take_u64()?),
            gpu_clock: ClockDomain::from_mhz(r.take_u64()?),
            cpu_cores: r.take_usize()?,
            gpu_cus: r.take_usize()?,
            mesh_side: r.take_usize()?,
            scratchpad_bytes: r.take_usize()?,
            local_banks: r.take_usize()?,
            l1_bytes: r.take_usize()?,
            l1_ways: r.take_usize()?,
            l1_banks: r.take_usize()?,
            line_bytes: r.take_usize()?,
            l2_bytes: r.take_usize()?,
            l2_banks: r.take_usize()?,
            l2_interleave_lines: r.take_u64()?,
            l2_ways: r.take_usize()?,
            l1_hit_cycles: r.take_u64()?,
            stash_translation_cycles: r.take_u64()?,
            l2_base_cycles: r.take_u64()?,
            hop_round_trip_cycles: r.take_u64()?,
            hop_round_trip_cycles_y: r.take_u64()?,
            dram_extra_cycles: r.take_u64()?,
            remote_base_cycles: r.take_u64()?,
            vp_map_entries: r.take_usize()?,
            stash_map_entries: r.take_usize()?,
            max_maps_per_thread_block: r.take_usize()?,
            page_bytes: r.take_usize()?,
            threads_per_block: r.take_usize()?,
            warp_size: r.take_usize()?,
            max_blocks_per_cu: r.take_usize()?,
            max_outstanding_misses: r.take_usize()?,
            stash_chunk_bytes: r.take_usize()?,
            kernel_launch_cycles: r.take_u64()?,
            energy_scale_pct: r.take_u64()?,
        };
        cfg.validate()
            .map_err(|detail| crate::SimError::CheckpointCorrupt {
                what: "system config",
                detail,
            })?;
        Ok(cfg)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cpu_clock: ClockDomain::from_mhz(2000),
            gpu_clock: ClockDomain::from_mhz(700),
            cpu_cores: 15,
            gpu_cus: 1,
            mesh_side: 4,
            scratchpad_bytes: 16 * 1024,
            local_banks: 32,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_banks: 8,
            line_bytes: 64,
            l2_bytes: 4 * 1024 * 1024,
            l2_banks: 16,
            l2_interleave_lines: 1,
            l2_ways: 16,
            l1_hit_cycles: 1,
            stash_translation_cycles: 10,
            l2_base_cycles: 29,
            hop_round_trip_cycles: 5,
            hop_round_trip_cycles_y: 5,
            dram_extra_cycles: 168,
            remote_base_cycles: 35,
            vp_map_entries: 64,
            stash_map_entries: 64,
            max_maps_per_thread_block: 4,
            page_bytes: 4096,
            threads_per_block: 256,
            warp_size: 32,
            max_blocks_per_cu: 8,
            max_outstanding_misses: 64,
            stash_chunk_bytes: 64,
            kernel_launch_cycles: 2000,
            energy_scale_pct: 100,
        }
    }
}

/// One point of the hardware design space the `dse` engine sweeps: the
/// geometry and latency/energy knobs that vary across candidate designs,
/// applied over a baseline [`SystemConfig`] (which keeps the workload-set
/// choices — core counts, clocks, capacities — fixed).
///
/// [`DesignPoint::default`] is the paper's operating point: applying it
/// to any baseline returns that baseline unchanged, which is what keeps
/// the default-geometry figures byte-identical.
///
/// # Example
///
/// ```
/// use sim::config::{DesignPoint, SystemConfig};
///
/// let base = SystemConfig::for_applications();
/// assert_eq!(DesignPoint::default().apply(&base), base);
///
/// let wide = DesignPoint { mesh_side: 8, ..DesignPoint::default() };
/// let sys = wide.apply(&base);
/// assert_eq!(sys.mesh_nodes(), 64);
/// assert!(sys.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Mesh side length (the paper: 4).
    pub mesh_side: usize,
    /// X-dimension per-hop round-trip cycles (the paper: 5).
    pub hop_x_cycles: u64,
    /// Y-dimension per-hop round-trip cycles (the paper: 5, symmetric).
    pub hop_y_cycles: u64,
    /// LLC bank count (the paper: 16).
    pub l2_banks: usize,
    /// Lines per bank before the interleave advances (the paper: 1).
    pub l2_interleave_lines: u64,
    /// Stash map-table entries per CU (the paper: 64).
    pub stash_map_entries: usize,
    /// Base LLC access latency (the paper: 29).
    pub l2_base_cycles: u64,
    /// Extra memory-controller latency past the LLC (the paper: 168).
    pub dram_extra_cycles: u64,
    /// Base three-leg remote-forward latency (the paper: 35).
    pub remote_base_cycles: u64,
    /// Stash translation latency charged on misses (the paper: 10).
    pub stash_translation_cycles: u64,
    /// Energy-constant scale in percent (the paper's process: 100).
    pub energy_scale_pct: u64,
}

impl Default for DesignPoint {
    fn default() -> Self {
        let sys = SystemConfig::default();
        Self {
            mesh_side: sys.mesh_side,
            hop_x_cycles: sys.hop_round_trip_cycles,
            hop_y_cycles: sys.hop_round_trip_cycles_y,
            l2_banks: sys.l2_banks,
            l2_interleave_lines: sys.l2_interleave_lines,
            stash_map_entries: sys.stash_map_entries,
            l2_base_cycles: sys.l2_base_cycles,
            dram_extra_cycles: sys.dram_extra_cycles,
            remote_base_cycles: sys.remote_base_cycles,
            stash_translation_cycles: sys.stash_translation_cycles,
            energy_scale_pct: sys.energy_scale_pct,
        }
    }
}

impl DesignPoint {
    /// Overlays this point's knobs on `base`, keeping everything the
    /// point does not cover (core counts, clocks, cache capacities).
    #[must_use]
    pub fn apply(&self, base: &SystemConfig) -> SystemConfig {
        SystemConfig {
            mesh_side: self.mesh_side,
            hop_round_trip_cycles: self.hop_x_cycles,
            hop_round_trip_cycles_y: self.hop_y_cycles,
            l2_banks: self.l2_banks,
            l2_interleave_lines: self.l2_interleave_lines,
            stash_map_entries: self.stash_map_entries,
            l2_base_cycles: self.l2_base_cycles,
            dram_extra_cycles: self.dram_extra_cycles,
            remote_base_cycles: self.remote_base_cycles,
            stash_translation_cycles: self.stash_translation_cycles,
            energy_scale_pct: self.energy_scale_pct,
            ..base.clone()
        }
    }

    /// Compact stable label, e.g. `m4 h5/5 b16/i1 s64 L29+168+35 t10 e100`
    /// — the key the `dse` reports print per point.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "m{} h{}/{} b{}/i{} s{} L{}+{}+{} t{} e{}",
            self.mesh_side,
            self.hop_x_cycles,
            self.hop_y_cycles,
            self.l2_banks,
            self.l2_interleave_lines,
            self.stash_map_entries,
            self.l2_base_cycles,
            self.dram_extra_cycles,
            self.remote_base_cycles,
            self.stash_translation_cycles,
            self.energy_scale_pct,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = SystemConfig::default();
        assert_eq!(c.cpu_clock.mhz(), 2000);
        assert_eq!(c.gpu_clock.mhz(), 700);
        assert_eq!(c.scratchpad_bytes, 16 * 1024);
        assert_eq!(c.local_banks, 32);
        assert_eq!(c.vp_map_entries, 64);
        assert_eq!(c.stash_map_entries, 64);
        assert_eq!(c.stash_translation_cycles, 10);
        assert_eq!(c.l1_hit_cycles, 1);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_banks, 8);
        assert_eq!(c.l1_ways, 8);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2_banks, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn l2_latency_band_matches_paper() {
        // 29–61 cycles in the paper; base + 6 hops * 5 = 59 ∈ [29, 61].
        let c = SystemConfig::default();
        let max_hops = 2 * (c.mesh_side as u64 - 1);
        let max = c.l2_base_cycles + max_hops * c.hop_round_trip_cycles;
        assert!(c.l2_base_cycles == 29 && (55..=61).contains(&max));
    }

    #[test]
    fn memory_latency_band_matches_paper() {
        // 197–261 in the paper: L2 band shifted by the DRAM constant.
        let c = SystemConfig::default();
        assert_eq!(c.l2_base_cycles + c.dram_extra_cycles, 197);
    }

    #[test]
    fn presets_select_paper_core_counts() {
        let m = SystemConfig::for_microbenchmarks();
        assert_eq!((m.cpu_cores, m.gpu_cus), (15, 1));
        let a = SystemConfig::for_applications();
        assert_eq!((a.cpu_cores, a.gpu_cus), (1, 15));
        assert!(m.validate().is_ok() && a.validate().is_ok());
    }

    #[test]
    fn validate_accepts_colocated_agents_and_rejects_degenerates() {
        // More agents than nodes co-locate on tiles (core i % nodes):
        // a 2×2 mesh still hosts the paper's 16 agents.
        let crowded = SystemConfig {
            mesh_side: 2,
            ..SystemConfig::default()
        };
        assert!(crowded.validate().is_ok());
        let empty = SystemConfig {
            cpu_cores: 0,
            gpu_cus: 0,
            ..SystemConfig::default()
        };
        assert!(empty.validate().is_err());
        let banks = SystemConfig {
            l2_banks: 0,
            ..SystemConfig::default()
        };
        assert!(banks.validate().is_err());
        let interleave = SystemConfig {
            l2_interleave_lines: 0,
            ..SystemConfig::default()
        };
        assert!(interleave.validate().is_err());
    }

    #[test]
    fn design_point_default_is_identity() {
        for base in [
            SystemConfig::for_microbenchmarks(),
            SystemConfig::for_applications(),
        ] {
            assert_eq!(DesignPoint::default().apply(&base), base);
        }
    }

    #[test]
    fn design_point_applies_every_dimension() {
        let p = DesignPoint {
            mesh_side: 8,
            hop_x_cycles: 3,
            hop_y_cycles: 7,
            l2_banks: 32,
            l2_interleave_lines: 4,
            stash_map_entries: 16,
            l2_base_cycles: 20,
            dram_extra_cycles: 200,
            remote_base_cycles: 50,
            stash_translation_cycles: 4,
            energy_scale_pct: 80,
        };
        let sys = p.apply(&SystemConfig::for_applications());
        assert_eq!(sys.mesh_side, 8);
        assert_eq!(sys.hop_round_trip_cycles, 3);
        assert_eq!(sys.hop_round_trip_cycles_y, 7);
        assert_eq!(sys.l2_banks, 32);
        assert_eq!(sys.l2_interleave_lines, 4);
        assert_eq!(sys.stash_map_entries, 16);
        assert_eq!(sys.l2_base_cycles, 20);
        assert_eq!(sys.dram_extra_cycles, 200);
        assert_eq!(sys.remote_base_cycles, 50);
        assert_eq!(sys.stash_translation_cycles, 4);
        assert_eq!(sys.energy_scale_pct, 80);
        // The baseline's machine choice survives the overlay.
        assert_eq!((sys.cpu_cores, sys.gpu_cus), (1, 15));
        assert!(sys.validate().is_ok());
        assert!(p.label().starts_with("m8 h3/7 b32/i4"));
    }

    #[test]
    fn stable_hash_tracks_every_field() {
        let base = SystemConfig::for_applications();
        assert_eq!(base.stable_hash(), base.stable_hash());
        assert_ne!(
            base.stable_hash(),
            SystemConfig::for_microbenchmarks().stable_hash()
        );
        // A single-field change anywhere must move the hash.
        let tweaked = SystemConfig {
            l2_interleave_lines: 2,
            ..base.clone()
        };
        assert_ne!(base.stable_hash(), tweaked.stable_hash());
        // Every design-point overlay dimension is visible too.
        let p = DesignPoint {
            stash_map_entries: 16,
            ..DesignPoint::default()
        };
        assert_ne!(base.stable_hash(), p.apply(&base).stable_hash());
    }

    #[test]
    fn config_round_trips_through_snapshot() {
        let cfg = SystemConfig {
            mesh_side: 8,
            l2_banks: 32,
            ..SystemConfig::for_applications()
        };
        let mut w = crate::snapshot::Writer::new();
        cfg.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snapshot::Reader::new(&bytes, "cfg");
        let back = SystemConfig::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn config_load_rejects_invalid() {
        let cfg = SystemConfig::default();
        let mut w = crate::snapshot::Writer::new();
        cfg.save(&mut w);
        let mut bytes = w.into_bytes();
        // Zero out the cpu_cores and gpu_cus fields (offsets 16 and 24):
        // a config with no agents must fail revalidation on load.
        for b in &mut bytes[16..32] {
            *b = 0;
        }
        let mut r = crate::snapshot::Reader::new(&bytes, "cfg");
        assert!(matches!(
            SystemConfig::load(&mut r).unwrap_err(),
            crate::SimError::CheckpointCorrupt {
                what: "system config",
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_non_power_of_two_line() {
        let cfg = SystemConfig {
            line_bytes: 48,
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_ragged_thread_block() {
        let cfg = SystemConfig {
            threads_per_block: 100,
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
