//! System configuration: every parameter of Table 2 of the paper.
//!
//! The defaults reproduce the simulated heterogeneous system of the paper:
//! a 4×4 mesh with CPU cores and GPU compute units at its nodes, a shared
//! banked NUCA L2, per-GPU-core L1 + 16 KB scratchpad/stash, and the DeNovo
//! coherence protocol.

use crate::clock::ClockDomain;

/// Full system configuration (Table 2 of the paper).
///
/// Construct with [`SystemConfig::default`] for the paper's parameters, or
/// use the `for_microbenchmarks` / `for_applications` presets which select
/// the paper's core counts (15 CPU + 1 CU for microbenchmarks, 1 CPU +
/// 15 CUs for applications).
///
/// # Example
///
/// ```
/// use sim::config::SystemConfig;
///
/// let cfg = SystemConfig::for_microbenchmarks();
/// assert_eq!(cfg.gpu_cus, 1);
/// assert_eq!(cfg.cpu_cores, 15);
/// assert_eq!(cfg.gpu_cus + cfg.cpu_cores, cfg.mesh_nodes());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// CPU clock (2 GHz in the paper).
    pub cpu_clock: ClockDomain,
    /// GPU clock (700 MHz in the paper).
    pub gpu_clock: ClockDomain,
    /// Number of CPU cores on the mesh.
    pub cpu_cores: usize,
    /// Number of GPU compute units (CUs) on the mesh.
    pub gpu_cus: usize,
    /// Mesh side length; the paper uses a 4×4 mesh (16 nodes).
    pub mesh_side: usize,
    /// Scratchpad/stash capacity per CU in bytes (16 KB).
    pub scratchpad_bytes: usize,
    /// Number of banks in the scratchpad and the stash (32).
    pub local_banks: usize,
    /// L1 cache capacity in bytes (32 KB).
    pub l1_bytes: usize,
    /// L1 associativity (8-way).
    pub l1_ways: usize,
    /// L1 banks (8).
    pub l1_banks: usize,
    /// Cache line size in bytes (64 B, i.e. 16 four-byte words).
    pub line_bytes: usize,
    /// Shared L2 capacity in bytes (4 MB NUCA).
    pub l2_bytes: usize,
    /// L2 bank count (16, one per mesh node).
    pub l2_banks: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L1 and stash hit latency in cycles (1).
    pub l1_hit_cycles: u64,
    /// Stash address-translation latency applied on misses (10 cycles).
    pub stash_translation_cycles: u64,
    /// Base L2 access latency at distance zero; the paper's 29–61-cycle
    /// range emerges from this base plus mesh hops.
    pub l2_base_cycles: u64,
    /// Additional round-trip latency per one-way mesh hop. With a 4×4 mesh
    /// (max 6 hops) and base 29 this yields the paper's 29–61 range (not
    /// exactly 61 — 29 + 6·5 = 59 — but within the published band).
    pub hop_round_trip_cycles: u64,
    /// Extra latency a request pays at the memory controller beyond the L2
    /// path; 168 extra cycles turns 29–61 into the paper's 197–261 band
    /// (197–227 from the L2 path plus controller-distance jitter).
    pub dram_extra_cycles: u64,
    /// Base latency for a remote L1/stash hit (three-leg forwarding).
    /// The paper's observed range is 35–83 cycles.
    pub remote_base_cycles: u64,
    /// TLB and reverse-TLB (VP-map) entries, each (64).
    pub vp_map_entries: usize,
    /// Stash-map entries (64).
    pub stash_map_entries: usize,
    /// Maximum AddMap calls (map-index-table entries) per thread block (4).
    pub max_maps_per_thread_block: usize,
    /// Page size in bytes (4 KB).
    pub page_bytes: usize,
    /// Threads per thread block used by the workloads (256 ⇒ 8 warps).
    pub threads_per_block: usize,
    /// Warp width (32 lanes).
    pub warp_size: usize,
    /// Maximum thread blocks resident on one CU at a time (8).
    pub max_blocks_per_cu: usize,
    /// Maximum outstanding misses per CU (MSHR-like limit).
    pub max_outstanding_misses: usize,
    /// Writeback chunk granularity for the stash in bytes (64 B).
    pub stash_chunk_bytes: usize,
    /// Fixed GPU cycles per kernel launch (driver + dispatch overhead;
    /// a few microseconds on Fermi-class hardware).
    pub kernel_launch_cycles: u64,
}

impl SystemConfig {
    /// The paper's microbenchmark machine: 1 GPU CU and 15 CPU cores.
    pub fn for_microbenchmarks() -> Self {
        Self {
            cpu_cores: 15,
            gpu_cus: 1,
            ..Self::default()
        }
    }

    /// The paper's application machine: 15 GPU CUs and 1 CPU core.
    pub fn for_applications() -> Self {
        Self {
            cpu_cores: 1,
            gpu_cus: 15,
            ..Self::default()
        }
    }

    /// Total number of mesh nodes (`mesh_side`²).
    pub fn mesh_nodes(&self) -> usize {
        self.mesh_side * self.mesh_side
    }

    /// Number of 4-byte words in one cache line.
    pub fn words_per_line(&self) -> usize {
        self.line_bytes / 4
    }

    /// Number of warps in one thread block.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block / self.warp_size
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint: core counts must
    /// fit on the mesh, sizes must be powers of two where the hardware
    /// requires it, and the line size must be a multiple of the word size.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpu_cores + self.gpu_cus > self.mesh_nodes() {
            return Err(format!(
                "{} CPU cores + {} GPU CUs exceed the {} mesh nodes",
                self.cpu_cores,
                self.gpu_cus,
                self.mesh_nodes()
            ));
        }
        for (name, v) in [
            ("line_bytes", self.line_bytes),
            ("l1_bytes", self.l1_bytes),
            ("l2_bytes", self.l2_bytes),
            ("page_bytes", self.page_bytes),
            ("scratchpad_bytes", self.scratchpad_bytes),
        ] {
            if !v.is_power_of_two() {
                return Err(format!("{name} ({v}) must be a power of two"));
            }
        }
        if !self.line_bytes.is_multiple_of(4) {
            return Err("line_bytes must be a multiple of the 4-byte word".into());
        }
        if !self.stash_chunk_bytes.is_multiple_of(4)
            || self.stash_chunk_bytes > self.scratchpad_bytes
        {
            return Err("stash_chunk_bytes must be word-aligned and fit the stash".into());
        }
        if !self.threads_per_block.is_multiple_of(self.warp_size) {
            return Err("threads_per_block must be a whole number of warps".into());
        }
        if self.l2_banks == 0 || self.l2_banks > self.mesh_nodes() {
            return Err("l2_banks must be between 1 and the node count".into());
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cpu_clock: ClockDomain::from_mhz(2000),
            gpu_clock: ClockDomain::from_mhz(700),
            cpu_cores: 15,
            gpu_cus: 1,
            mesh_side: 4,
            scratchpad_bytes: 16 * 1024,
            local_banks: 32,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_banks: 8,
            line_bytes: 64,
            l2_bytes: 4 * 1024 * 1024,
            l2_banks: 16,
            l2_ways: 16,
            l1_hit_cycles: 1,
            stash_translation_cycles: 10,
            l2_base_cycles: 29,
            hop_round_trip_cycles: 5,
            dram_extra_cycles: 168,
            remote_base_cycles: 35,
            vp_map_entries: 64,
            stash_map_entries: 64,
            max_maps_per_thread_block: 4,
            page_bytes: 4096,
            threads_per_block: 256,
            warp_size: 32,
            max_blocks_per_cu: 8,
            max_outstanding_misses: 64,
            stash_chunk_bytes: 64,
            kernel_launch_cycles: 2000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = SystemConfig::default();
        assert_eq!(c.cpu_clock.mhz(), 2000);
        assert_eq!(c.gpu_clock.mhz(), 700);
        assert_eq!(c.scratchpad_bytes, 16 * 1024);
        assert_eq!(c.local_banks, 32);
        assert_eq!(c.vp_map_entries, 64);
        assert_eq!(c.stash_map_entries, 64);
        assert_eq!(c.stash_translation_cycles, 10);
        assert_eq!(c.l1_hit_cycles, 1);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_banks, 8);
        assert_eq!(c.l1_ways, 8);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2_banks, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn l2_latency_band_matches_paper() {
        // 29–61 cycles in the paper; base + 6 hops * 5 = 59 ∈ [29, 61].
        let c = SystemConfig::default();
        let max_hops = 2 * (c.mesh_side as u64 - 1);
        let max = c.l2_base_cycles + max_hops * c.hop_round_trip_cycles;
        assert!(c.l2_base_cycles == 29 && (55..=61).contains(&max));
    }

    #[test]
    fn memory_latency_band_matches_paper() {
        // 197–261 in the paper: L2 band shifted by the DRAM constant.
        let c = SystemConfig::default();
        assert_eq!(c.l2_base_cycles + c.dram_extra_cycles, 197);
    }

    #[test]
    fn presets_select_paper_core_counts() {
        let m = SystemConfig::for_microbenchmarks();
        assert_eq!((m.cpu_cores, m.gpu_cus), (15, 1));
        let a = SystemConfig::for_applications();
        assert_eq!((a.cpu_cores, a.gpu_cus), (1, 15));
        assert!(m.validate().is_ok() && a.validate().is_ok());
    }

    #[test]
    fn validate_rejects_overfull_mesh() {
        let cfg = SystemConfig {
            cpu_cores: 16,
            gpu_cus: 1,
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_power_of_two_line() {
        let cfg = SystemConfig {
            line_bytes: 48,
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_ragged_thread_block() {
        let cfg = SystemConfig {
            threads_per_block: 100,
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
