//! Deterministic, seed-driven fault injection (the chaos substrate).
//!
//! A [`FaultInjector`] is a [`SplitMix64`]-seeded schedule of transient
//! faults that the memory system consults at well-defined *sites*:
//!
//! * **Message fates** ([`FaultInjector::message_fate`]) — each network
//!   send may be delivered, delayed, duplicated, or dropped. The NoC
//!   consumes the fate ([`noc`-side helper]); the memory system reacts
//!   with sequence numbers, timeouts, and bounded-exponential-backoff
//!   retries (or, with resilience disabled, an immediate watchdog trip).
//! * **Word flips** ([`FaultInjector::flip_word`]) — data words arriving
//!   at a stash or LLC may be corrupted; the parity/ECC model detects
//!   (and corrects) flips at read sites, stores silently overwrite them,
//!   and an end-of-run scrub sweeps the remainder.
//! * **Lost writebacks** ([`FaultInjector::lose_writeback`]) and
//!   **truncated DMA transfers** ([`FaultInjector::truncate_dma`]).
//!
//! Everything is a pure function of the seed and the draw order, which the
//! memory system keeps deterministic (one injector per machine, consulted
//! in program order), so a fault schedule replays bit-identically — the
//! property the chaos harness and the cross-thread determinism tests rely
//! on. Every draw that fires is appended to a [`FaultEvent`] trace that
//! those tests compare across `--threads` settings.
//!
//! Latency/energy/traffic are *accounting* in this transaction-level
//! simulator, so injection never mutates architectural state itself; it
//! only decides which state transitions the memory system skips, repeats,
//! or flags. Recovery therefore means "architectural state converges to
//! the fault-free run"; detection means "a parity/scrub/watchdog/oracle
//! flag fired". The chaos harness enforces that every run is one or the
//! other.
//!
//! [`noc`-side helper]: FaultKind
//! [`SplitMix64`]: crate::rng::SplitMix64

use crate::rng::SplitMix64;

/// Retry/timeout policy for resilient request/response messaging.
///
/// A lost (or presumed-lost) request times out after
/// [`timeout_cycles`](Self::timeout_cycles), is NACKed, and is re-sent
/// after a bounded exponential backoff: attempt `n` (1-based) waits
/// `min(backoff_base_cycles << (n - 1), backoff_cap_cycles)` extra
/// cycles. After [`max_retries`](Self::max_retries) failed attempts the
/// no-progress watchdog trips ([`SimError::Deadlock`]) — the simulator
/// never hangs.
///
/// [`SimError::Deadlock`]: crate::error::SimError::Deadlock
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Cycles a requester waits before declaring an attempt lost.
    pub timeout_cycles: u64,
    /// Retries after the first attempt before the watchdog trips.
    pub max_retries: u32,
    /// Backoff after the first failed attempt (doubles per retry).
    pub backoff_base_cycles: u64,
    /// Upper bound on a single backoff wait.
    pub backoff_cap_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_cycles: 200,
            max_retries: 8,
            backoff_base_cycles: 16,
            backoff_cap_cycles: 4096,
        }
    }
}

impl RetryPolicy {
    /// The bounded-exponential backoff for 1-based failed attempt `n`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let factor = 1u64
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        self.backoff_base_cycles
            .saturating_mul(factor)
            .min(self.backoff_cap_cycles)
    }
}

/// Per-mille fault rates plus the resilience/detection switches.
///
/// Rates are drawn independently per site in a fixed order, so a config +
/// seed fully determines the schedule. The `resilience` and `parity`
/// switches exist so the chaos harness can demonstrate *non-vacuity*:
/// with them off, injected faults produce classified silent-corruption
/// escapes instead of recovery/detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Per-mille chance a message is dropped in the network.
    pub drop_per_mille: u64,
    /// Per-mille chance a message is duplicated (same sequence number).
    pub dup_per_mille: u64,
    /// Per-mille chance a message is delayed.
    pub delay_per_mille: u64,
    /// Extra latency of a delayed message: 1..=`delay_max_cycles`.
    pub delay_max_cycles: u64,
    /// Per-mille chance a word arriving at a stash/LLC is flipped.
    pub flip_per_mille: u64,
    /// Per-mille chance a fire-and-forget writeback is lost.
    pub wb_lose_per_mille: u64,
    /// Per-mille chance a DMA transfer is truncated short.
    pub dma_truncate_per_mille: u64,
    /// Enable seq-number/timeout/retry/fallback machinery.
    pub resilience: bool,
    /// Enable the parity/ECC detection model (read checks + end scrub).
    pub parity: bool,
    /// Timeout/retry/backoff parameters used when `resilience` is on.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// The chaos harness's default schedule: every fault class enabled at
    /// low rates, full resilience and detection on.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_per_mille: 3,
            dup_per_mille: 2,
            delay_per_mille: 5,
            delay_max_cycles: 64,
            flip_per_mille: 2,
            wb_lose_per_mille: 3,
            dma_truncate_per_mille: 5,
            resilience: true,
            parity: true,
            retry: RetryPolicy::default(),
        }
    }

    /// A schedule with every rate zero (used by the overhead tests: an
    /// installed injector that never fires must not change any result).
    pub fn quiescent(seed: u64) -> Self {
        FaultConfig {
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            flip_per_mille: 0,
            wb_lose_per_mille: 0,
            dma_truncate_per_mille: 0,
            ..FaultConfig::chaos(seed)
        }
    }

    /// Same schedule with the resilience machinery disabled (first lost
    /// message trips the watchdog; lost writebacks and truncated DMAs
    /// silently skip state — the demonstrable escape classes).
    pub fn without_resilience(mut self) -> Self {
        self.resilience = false;
        self
    }

    /// Same schedule with the parity/ECC model disabled (flips go
    /// undetected — corrupt words survive to the end of the run).
    pub fn without_parity(mut self) -> Self {
        self.parity = false;
        self
    }

    /// The same rates and switches with a seed derived deterministically
    /// from this config's seed and `salt` — an independent draw stream
    /// for a forked sub-injector (e.g. one per CU in a parallel kernel).
    /// The derivation is a pure function of `(seed, salt)`, so forks are
    /// reproducible at any thread count.
    pub fn fork(&self, salt: u64) -> Self {
        let mut mix = SplitMix64::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultConfig {
            seed: mix.next_u64(),
            ..self.clone()
        }
    }
}

/// What the network did to one send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered normally.
    Delivered,
    /// Delivered after an extra delay of the given cycles.
    Delayed(u64),
    /// Delivered twice with the same sequence number.
    Duplicated,
    /// Lost in the network.
    Dropped,
}

/// The kind of an injected (or reacted-to) fault event, for the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A message was dropped.
    Drop,
    /// A message was duplicated.
    Duplicate,
    /// A message was delayed.
    Delay,
    /// A data word was flipped.
    Flip,
    /// A writeback was lost.
    WritebackLost,
    /// A DMA transfer was truncated.
    DmaTruncated,
    /// A timed-out request was retried.
    Retry,
}

/// One entry of the deterministic fault trace.
///
/// The trace is part of the determinism contract: identical seed + config
/// must yield an identical trace regardless of `--threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The site that drew the fault (a static label like `"cache.load"`).
    pub site: &'static str,
    /// What happened.
    pub kind: FaultKind,
    /// The sequence number of the affected request (0 for non-message
    /// faults such as flips).
    pub seq: u64,
    /// 1-based attempt number for retries (1 otherwise).
    pub attempt: u32,
}

/// A seeded fault schedule plus the per-machine sequence-number source.
///
/// One injector belongs to one machine; draws happen in the machine's
/// deterministic program order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SplitMix64,
    next_seq: u64,
    trace: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Builds an injector from a schedule config.
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        FaultInjector {
            cfg,
            rng,
            next_seq: 0,
            trace: Vec::new(),
        }
    }

    /// The schedule this injector runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Allocates the next request sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// The fault trace so far (deterministic; compared across thread
    /// counts by the property tests).
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Appends another injector's fault trace to this one (merging a
    /// forked per-CU injector's events back into the machine's trace).
    pub fn absorb_trace(&mut self, events: &[FaultEvent]) {
        self.trace.extend_from_slice(events);
    }

    /// Records a reaction event (e.g. a retry) in the trace.
    pub fn log(&mut self, site: &'static str, kind: FaultKind, seq: u64, attempt: u32) {
        self.trace.push(FaultEvent {
            site,
            kind,
            seq,
            attempt,
        });
    }

    fn chance(&mut self, per_mille: u64) -> bool {
        per_mille > 0 && self.rng.chance(per_mille, 1000)
    }

    /// Draws the fate of one message-send attempt.
    ///
    /// Draw order is fixed (drop, then duplicate, then delay) so a seed
    /// fully determines the schedule.
    pub fn message_fate(&mut self, site: &'static str, seq: u64, attempt: u32) -> MessageFate {
        if self.chance(self.cfg.drop_per_mille) {
            self.log(site, FaultKind::Drop, seq, attempt);
            return MessageFate::Dropped;
        }
        if self.chance(self.cfg.dup_per_mille) {
            self.log(site, FaultKind::Duplicate, seq, attempt);
            return MessageFate::Duplicated;
        }
        if self.chance(self.cfg.delay_per_mille) {
            let extra = 1 + self.rng.next_below(self.cfg.delay_max_cycles.max(1));
            self.log(site, FaultKind::Delay, seq, attempt);
            return MessageFate::Delayed(extra);
        }
        MessageFate::Delivered
    }

    /// Whether a data word arriving at a stash or the LLC is flipped.
    pub fn flip_word(&mut self, site: &'static str) -> bool {
        if self.chance(self.cfg.flip_per_mille) {
            self.log(site, FaultKind::Flip, 0, 1);
            return true;
        }
        false
    }

    /// Whether a fire-and-forget writeback message is lost.
    pub fn lose_writeback(&mut self, site: &'static str) -> bool {
        if self.chance(self.cfg.wb_lose_per_mille) {
            self.log(site, FaultKind::WritebackLost, 0, 1);
            return true;
        }
        false
    }

    /// Whether (and where) a DMA transfer of `words` words is cut short.
    ///
    /// Returns the number of words actually delivered (`< words`), or
    /// `None` for an intact transfer.
    pub fn truncate_dma(&mut self, site: &'static str, words: u64) -> Option<u64> {
        if words > 0 && self.chance(self.cfg.dma_truncate_per_mille) {
            self.log(site, FaultKind::DmaTruncated, 0, 1);
            return Some(self.rng.next_below(words));
        }
        None
    }

    /// Serializes the complete injector state — schedule config, RNG
    /// position, sequence-number source, and fault trace — so a restored
    /// machine continues the exact same draw stream.
    pub fn save(&self, w: &mut crate::snapshot::Writer) {
        let c = &self.cfg;
        w.put_u64(c.seed);
        w.put_u64(c.drop_per_mille);
        w.put_u64(c.dup_per_mille);
        w.put_u64(c.delay_per_mille);
        w.put_u64(c.delay_max_cycles);
        w.put_u64(c.flip_per_mille);
        w.put_u64(c.wb_lose_per_mille);
        w.put_u64(c.dma_truncate_per_mille);
        w.put_bool(c.resilience);
        w.put_bool(c.parity);
        w.put_u64(c.retry.timeout_cycles);
        w.put_u32(c.retry.max_retries);
        w.put_u64(c.retry.backoff_base_cycles);
        w.put_u64(c.retry.backoff_cap_cycles);
        w.put_u64(self.rng.state());
        w.put_u64(self.next_seq);
        w.put_usize(self.trace.len());
        for e in &self.trace {
            w.put_str(e.site);
            w.put_u8(fault_kind_code(e.kind));
            w.put_u64(e.seq);
            w.put_u32(e.attempt);
        }
    }

    /// Restores an injector written by [`FaultInjector::save`].
    pub fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::SimError> {
        let cfg = FaultConfig {
            seed: r.take_u64()?,
            drop_per_mille: r.take_u64()?,
            dup_per_mille: r.take_u64()?,
            delay_per_mille: r.take_u64()?,
            delay_max_cycles: r.take_u64()?,
            flip_per_mille: r.take_u64()?,
            wb_lose_per_mille: r.take_u64()?,
            dma_truncate_per_mille: r.take_u64()?,
            resilience: r.take_bool()?,
            parity: r.take_bool()?,
            retry: RetryPolicy {
                timeout_cycles: r.take_u64()?,
                max_retries: r.take_u32()?,
                backoff_base_cycles: r.take_u64()?,
                backoff_cap_cycles: r.take_u64()?,
            },
        };
        let rng = SplitMix64::from_state(r.take_u64()?);
        let next_seq = r.take_u64()?;
        let n = r.take_usize()?;
        let mut trace = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let site = intern_site(r.take_str()?);
            let kind = fault_kind_from_code(r.take_u8()?)?;
            let seq = r.take_u64()?;
            let attempt = r.take_u32()?;
            trace.push(FaultEvent {
                site,
                kind,
                seq,
                attempt,
            });
        }
        Ok(FaultInjector {
            cfg,
            rng,
            next_seq,
            trace,
        })
    }
}

fn fault_kind_code(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::Drop => 0,
        FaultKind::Duplicate => 1,
        FaultKind::Delay => 2,
        FaultKind::Flip => 3,
        FaultKind::WritebackLost => 4,
        FaultKind::DmaTruncated => 5,
        FaultKind::Retry => 6,
    }
}

fn fault_kind_from_code(code: u8) -> Result<FaultKind, crate::SimError> {
    Ok(match code {
        0 => FaultKind::Drop,
        1 => FaultKind::Duplicate,
        2 => FaultKind::Delay,
        3 => FaultKind::Flip,
        4 => FaultKind::WritebackLost,
        5 => FaultKind::DmaTruncated,
        6 => FaultKind::Retry,
        v => {
            return Err(crate::SimError::CheckpointCorrupt {
                what: "fault trace",
                detail: format!("unknown fault kind code {v}"),
            })
        }
    })
}

/// Interns a site label, returning a `'static` string.
///
/// Fault-event sites are `&'static str` in the live simulator (string
/// literals at injection sites); a deserialized trace has to reconstruct
/// that, so loaded site names go into a small process-global intern pool.
/// The pool only ever holds the handful of distinct site labels the
/// simulator uses, so the leak is bounded.
pub fn intern_site(name: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut pool = pool.lock().expect("site intern pool poisoned");
    if let Some(found) = pool.iter().find(|s| **s == name) {
        return found;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let draw_all = |seed| {
            let mut inj = FaultInjector::new(FaultConfig::chaos(seed));
            let fates: Vec<MessageFate> = (0..2000).map(|i| inj.message_fate("t", i, 1)).collect();
            let flips: Vec<bool> = (0..500).map(|_| inj.flip_word("t")).collect();
            (fates, flips, inj.trace().to_vec())
        };
        assert_eq!(draw_all(7), draw_all(7));
        assert_ne!(draw_all(7).2, draw_all(8).2, "seeds must differ");
    }

    #[test]
    fn chaos_rates_fire_but_rarely() {
        let mut inj = FaultInjector::new(FaultConfig::chaos(1));
        let n = 20_000;
        let dropped = (0..n)
            .filter(|&i| inj.message_fate("t", i, 1) == MessageFate::Dropped)
            .count();
        // 3 per mille of 20k ≈ 60; accept a generous band.
        assert!((10..300).contains(&dropped), "dropped {dropped} of {n}");
    }

    #[test]
    fn quiescent_schedule_never_fires() {
        let mut inj = FaultInjector::new(FaultConfig::quiescent(42));
        for i in 0..5000 {
            assert_eq!(inj.message_fate("t", i, 1), MessageFate::Delivered);
            assert!(!inj.flip_word("t"));
            assert!(!inj.lose_writeback("t"));
            assert_eq!(inj.truncate_dma("t", 64), None);
        }
        assert!(inj.trace().is_empty());
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), 16);
        assert_eq!(p.backoff(2), 32);
        assert_eq!(p.backoff(3), 64);
        assert_eq!(p.backoff(9), 4096, "capped");
        assert_eq!(p.backoff(64), 4096, "shift overflow is capped too");
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotonic() {
        let mut inj = FaultInjector::new(FaultConfig::chaos(0));
        let a = inj.next_seq();
        let b = inj.next_seq();
        assert!(b > a);
    }

    #[test]
    fn injector_round_trips_through_snapshot() {
        let mut inj = FaultInjector::new(FaultConfig::chaos(77));
        for i in 0..500 {
            inj.message_fate("roundtrip.site", i, 1);
            inj.flip_word("roundtrip.flip");
        }
        inj.next_seq();
        let mut w = crate::snapshot::Writer::new();
        inj.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snapshot::Reader::new(&bytes, "fault");
        let mut back = FaultInjector::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.config(), inj.config());
        assert_eq!(back.trace(), inj.trace());
        // Future draws must continue the identical stream.
        for i in 0..200 {
            assert_eq!(
                inj.message_fate("after", i, 1),
                back.message_fate("after", i, 1)
            );
            assert_eq!(inj.next_seq(), back.next_seq());
        }
    }

    #[test]
    fn intern_site_dedups() {
        let a = intern_site("some.site.label");
        let b = intern_site("some.site.label");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn truncation_is_strictly_short() {
        let mut inj = FaultInjector::new(FaultConfig {
            dma_truncate_per_mille: 1000,
            ..FaultConfig::chaos(3)
        });
        for _ in 0..200 {
            let kept = inj.truncate_dma("t", 64).expect("certain truncation");
            assert!(kept < 64);
        }
    }

    #[test]
    fn zero_word_transfer_never_truncates_or_draws() {
        // A zero-word line (empty DMA burst) must not fire — and, just as
        // important for determinism, must not consume an RNG draw, so a
        // schedule is identical whether or not empty bursts occur.
        let mut inj = FaultInjector::new(FaultConfig {
            dma_truncate_per_mille: 1000,
            ..FaultConfig::chaos(11)
        });
        let mut twin = inj.clone();
        for _ in 0..50 {
            assert_eq!(inj.truncate_dma("t", 0), None);
        }
        assert!(inj.trace().is_empty(), "no event for zero-word transfers");
        for _ in 0..100 {
            assert_eq!(
                inj.truncate_dma("t", 16),
                twin.truncate_dma("t", 16),
                "zero-word calls must not advance the draw stream"
            );
        }
    }

    #[test]
    fn final_partial_burst_truncates_within_its_own_length() {
        // A line streamed in 16-word bursts with a final partial burst:
        // the cut point of the short tail burst must land inside it, so
        // the scrub's corrupt-word bookkeeping can never index past the
        // transfer.
        let mut inj = FaultInjector::new(FaultConfig {
            dma_truncate_per_mille: 1000,
            ..FaultConfig::chaos(5)
        });
        for tail in [1u64, 2, 3, 7, 15] {
            for _ in 0..50 {
                let kept = inj
                    .truncate_dma("dma.tail", tail)
                    .expect("certain truncation");
                assert!(kept < tail, "kept {kept} of a {tail}-word tail burst");
            }
        }
    }

    #[test]
    fn scrub_draws_continue_identically_after_restore() {
        // The end-of-run parity scrub consumes flip draws from the same
        // stream as everything else; a snapshot taken mid-schedule must
        // restore the stream exactly, or a resumed run's scrub would
        // diverge from the straight-through run it has to match.
        let mut inj = FaultInjector::new(FaultConfig {
            flip_per_mille: 500,
            ..FaultConfig::chaos(23)
        });
        for _ in 0..137 {
            inj.flip_word("scrub.pre");
        }
        let mut w = crate::snapshot::Writer::new();
        inj.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snapshot::Reader::new(&bytes, "fault");
        let mut back = FaultInjector::load(&mut r).unwrap();
        r.finish().unwrap();
        for _ in 0..300 {
            assert_eq!(inj.flip_word("scrub.post"), back.flip_word("scrub.post"));
            assert_eq!(
                inj.truncate_dma("scrub.dma", 9),
                back.truncate_dma("scrub.dma", 9)
            );
        }
        assert_eq!(inj.trace(), back.trace());
    }
}
