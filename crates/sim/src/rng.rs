//! Deterministic pseudo-random numbers for reproducible experiments.
//!
//! The simulator never uses ambient randomness: every run of every
//! experiment is a pure function of its seed. `SplitMix64` is small, fast,
//! and has well-understood statistical quality — good enough for workload
//! shuffling and branch-outcome draws, which is all the simulator needs.

/// A SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift mapping; bias is < 2^-64 per draw, irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den, "probability must be in [0, 1]");
        self.next_below(den) < num
    }

    /// Returns the raw generator state, for checkpointing.
    ///
    /// Feeding the result to [`SplitMix64::from_state`] reconstructs a
    /// generator whose future draw sequence continues exactly where this
    /// one left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Reconstructs a generator from a [`SplitMix64::state`] value.
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5743_5348) // "STSH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(4);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn state_round_trip_resumes_sequence() {
        let mut a = SplitMix64::new(11);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
