//! Crash-consistent machine-state snapshots.
//!
//! The environment is offline, so the format is a hand-rolled, versioned,
//! checksummed binary container — no serde, no external codecs. A snapshot
//! is a header plus a sequence of tagged sections:
//!
//! ```text
//! magic    8 bytes   b"STSHSNAP"
//! version  u32 LE    FORMAT_VERSION
//! count    u32 LE    number of sections
//! section  repeated: tag u32 LE | len u64 LE | crc32 u32 LE | payload
//! ```
//!
//! Every integer in the container (and in section payloads built with
//! [`Writer`]) is little-endian. Each section carries its own CRC-32 so a
//! torn tail or a flipped word is detected at the section that holds it,
//! and the reader reports [`SimError::CheckpointCorrupt`] naming the spot.
//! A version that does not match [`FORMAT_VERSION`] is reported as
//! [`SimError::CheckpointVersionMismatch`] instead — an old file is not
//! damage.
//!
//! Crash consistency on the write side is two-phase: [`write_atomic`]
//! writes the full byte image to a `*.tmp` sibling, syncs it, then renames
//! it over the destination. A crash before the rename leaves the previous
//! snapshot untouched; a crash during the rename leaves (on POSIX) either
//! the old or the new file, never a blend. [`CheckpointStore`] layers
//! numbered `ckpt-NNNN.snap` files on top and scans newest-first past any
//! torn or corrupt file, so recovery always lands on the latest snapshot
//! that validates end to end.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::SimError;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"STSHSNAP";

/// Snapshot format version written and accepted by this build.
pub const FORMAT_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
///
/// Hand-rolled nibble-table implementation: 16-entry table, no external
/// deps, fast enough for checkpoint-sized payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1DB7_1064,
        0x3B6E_20C8,
        0x26D9_30AC,
        0x76DC_4190,
        0x6B6B_51F4,
        0x4DB2_6158,
        0x5005_713C,
        0xEDB8_8320,
        0xF00F_9344,
        0xD6D6_A3E8,
        0xCB61_B38C,
        0x9B64_C2B0,
        0x86D3_D2D4,
        0xA00A_E278,
        0xBDBD_F21C,
    ];
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xF) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (u32::from(b) >> 4)) & 0xF) as usize] ^ (crc >> 4);
    }
    !crc
}

/// FNV-1a over a byte slice: the stable 64-bit content hash used wherever
/// the repo needs an *identity* rather than an error-detecting code —
/// program fingerprints in checkpoint META sections and the daemon's
/// content-addressed result-cache keys. (CRC-32 stays the per-section
/// damage detector; FNV is the addressing hash.)
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Append-only little-endian byte sink for section payloads.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over a section payload produced by [`Writer`].
///
/// Every `take_*` underflow or malformed field surfaces as
/// [`SimError::CheckpointCorrupt`] tagged with the section name the
/// reader was constructed with, so load errors name the damaged section.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Wraps a payload; `what` names the section in error reports.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn corrupt(&self, detail: String) -> SimError {
        SimError::CheckpointCorrupt {
            what: self.what,
            detail,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            self.corrupt(format!("length overflow reading {n} bytes at {}", self.pos))
        })?;
        if end > self.buf.len() {
            return Err(self.corrupt(format!(
                "truncated: need {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), SimError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing bytes", self.remaining())))
        }
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SimError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SimError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn take_usize(&mut self) -> Result<usize, SimError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("value {v} exceeds usize")))
    }

    /// Reads a bool byte, rejecting anything but 0/1.
    pub fn take_bool(&mut self) -> Result<bool, SimError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.corrupt(format!("bool byte {v}"))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SimError> {
        let n = self.take_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, SimError> {
        let b = self.take_bytes()?;
        std::str::from_utf8(b).map_err(|e| self.corrupt(format!("invalid utf-8: {e}")))
    }
}

/// An in-memory snapshot container: ordered, tagged, checksummed sections.
#[derive(Debug, Default, Clone)]
pub struct Snapshot {
    sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section; tags may repeat (lookup returns the first).
    pub fn push_section(&mut self, tag: u32, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// The `(tag, payload)` pairs in write order.
    pub fn sections(&self) -> &[(u32, Vec<u8>)] {
        &self.sections
    }

    /// Returns the first section with `tag`, or a corruption error naming
    /// `what` if the snapshot does not contain one.
    pub fn section(&self, tag: u32, what: &'static str) -> Result<&[u8], SimError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
            .ok_or(SimError::CheckpointCorrupt {
                what,
                detail: format!("missing section tag {tag:#010x}"),
            })
    }

    /// Serializes the container to its byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            MAGIC.len()
                + 8
                + self
                    .sections
                    .iter()
                    .map(|(_, p)| p.len() + 16)
                    .sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(
            &(u32::try_from(self.sections.len()).unwrap_or(u32::MAX)).to_le_bytes(),
        );
        for (tag, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and fully validates a byte image: magic, version, section
    /// framing, and every section CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SimError> {
        let corrupt = |detail: String| SimError::CheckpointCorrupt {
            what: "snapshot header",
            detail,
        };
        if bytes.len() < MAGIC.len() + 8 {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..], "snapshot header");
        let version = r.take_u32()?;
        if version != FORMAT_VERSION {
            return Err(SimError::CheckpointVersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let count = r.take_u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(1024));
        for i in 0..count {
            let section_corrupt = |detail: String| SimError::CheckpointCorrupt {
                what: "snapshot section table",
                detail,
            };
            let tag = r
                .take_u32()
                .map_err(|_| section_corrupt(format!("truncated header of section {i}")))?;
            let len = r
                .take_usize()
                .map_err(|_| section_corrupt(format!("truncated length of section {i}")))?;
            let want_crc = r
                .take_u32()
                .map_err(|_| section_corrupt(format!("truncated crc of section {i}")))?;
            if len > r.remaining() {
                return Err(section_corrupt(format!(
                    "section {i} (tag {tag:#010x}) claims {len} bytes, {} remain",
                    r.remaining()
                )));
            }
            let payload = r
                .take_bytes_raw(len)
                .map_err(|_| section_corrupt(format!("truncated payload of section {i}")))?;
            let got_crc = crc32(payload);
            if got_crc != want_crc {
                return Err(section_corrupt(format!(
                    "section {i} (tag {tag:#010x}) crc mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
                )));
            }
            sections.push((tag, payload.to_vec()));
        }
        if r.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes", r.remaining())));
        }
        Ok(Self { sections })
    }
}

impl Reader<'_> {
    fn take_bytes_raw(&mut self, n: usize) -> Result<&[u8], SimError> {
        self.take(n)
    }
}

/// Writes `bytes` to `path` crash-consistently: temp-file sibling, sync,
/// atomic rename. A crash at any point leaves either the previous file or
/// the complete new one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Loads and validates a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, SimError> {
    let bytes = fs::read(path).map_err(|e| SimError::CheckpointCorrupt {
        what: "snapshot file",
        detail: format!("{}: {e}", path.display()),
    })?;
    Snapshot::from_bytes(&bytes)
}

/// A directory of numbered snapshots with torn-file fallback.
///
/// Snapshots are written as `ckpt-NNNN.snap` with monotonically increasing
/// sequence numbers. [`CheckpointStore::latest_valid`] scans newest-first
/// and returns the first file that passes full validation, skipping (and
/// reporting) torn or corrupt newer files — the recovery contract after a
/// mid-write crash.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a given sequence number maps to.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:04}.snap"))
    }

    /// Sequence numbers of present snapshot files, ascending. Includes
    /// torn/corrupt files — presence, not validity.
    pub fn list(&self) -> Vec<u64> {
        let mut seqs: Vec<u64> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| parse_seq(&entry.file_name().to_string_lossy()))
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        seqs
    }

    /// Atomically writes `snap` under the next free sequence number and
    /// returns that number.
    pub fn save(&self, snap: &Snapshot) -> std::io::Result<u64> {
        let seq = self.list().last().map_or(0, |s| s + 1);
        write_atomic(&self.path_for(seq), &snap.to_bytes())?;
        Ok(seq)
    }

    /// Loads the newest snapshot that validates, skipping torn/corrupt
    /// newer files. Returns the winning sequence number, the snapshot, and
    /// the errors of every newer file that was rejected (newest first).
    ///
    /// Returns `None` if no file validates (or none exist).
    #[allow(clippy::type_complexity)]
    pub fn latest_valid(&self) -> Option<(u64, Snapshot, Vec<(u64, SimError)>)> {
        let mut rejected = Vec::new();
        for seq in self.list().into_iter().rev() {
            match read_snapshot(&self.path_for(seq)) {
                Ok(snap) => return Some((seq, snap, rejected)),
                Err(e) => rejected.push((seq, e)),
            }
        }
        None
    }
}

fn parse_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?;
    let digits = rest.strip_suffix(".snap")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        assert_ne!(fnv1a(b"stash"), fnv1a(b"stasH"));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("stash");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_usize().unwrap(), 12345);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.take_str().unwrap(), "stash");
        r.finish().unwrap();
    }

    #[test]
    fn reader_underflow_is_corrupt() {
        let bytes = [1u8, 2];
        let mut r = Reader::new(&bytes, "short");
        let err = r.take_u64().unwrap_err();
        assert!(matches!(
            err,
            SimError::CheckpointCorrupt { what: "short", .. }
        ));
    }

    #[test]
    fn reader_rejects_bad_bool_and_trailing() {
        let mut r = Reader::new(&[7], "b");
        assert!(matches!(
            r.take_bool().unwrap_err(),
            SimError::CheckpointCorrupt { .. }
        ));
        let r = Reader::new(&[0, 0], "t");
        assert!(matches!(
            r.finish().unwrap_err(),
            SimError::CheckpointCorrupt { .. }
        ));
    }

    #[test]
    fn snapshot_round_trip() {
        let mut s = Snapshot::new();
        s.push_section(0x4D45_5441, b"meta-bytes".to_vec());
        s.push_section(0x4C4C_4300, vec![0; 1000]);
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.section_count(), 2);
        assert_eq!(back.section(0x4D45_5441, "meta").unwrap(), b"meta-bytes");
        assert_eq!(back.section(0x4C4C_4300, "llc").unwrap(), &[0u8; 1000][..]);
        assert!(matches!(
            back.section(0x9999_9999, "nope").unwrap_err(),
            SimError::CheckpointCorrupt { what: "nope", .. }
        ));
    }

    #[test]
    fn bad_magic_and_version_are_distinguished() {
        let mut bytes = Snapshot::new().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&wrong_magic).unwrap_err(),
            SimError::CheckpointCorrupt { .. }
        ));
        // Patch the version field (bytes 8..12).
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SimError::CheckpointVersionMismatch {
                found: 99,
                expected: FORMAT_VERSION
            }
        ));
    }

    #[test]
    fn truncation_and_bitflip_are_detected() {
        let mut s = Snapshot::new();
        s.push_section(1, (0..255u8).collect());
        let bytes = s.to_bytes();
        // Every truncation point must fail validation, never panic.
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // A payload bit flip must trip the section CRC.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&flipped).unwrap_err(),
            SimError::CheckpointCorrupt { .. }
        ));
    }

    #[test]
    fn store_numbers_saves_and_recovers_past_torn_file() {
        let dir = std::env::temp_dir().join(format!(
            "stash-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.latest_valid().is_none());

        let mut a = Snapshot::new();
        a.push_section(1, b"first".to_vec());
        let mut b = Snapshot::new();
        b.push_section(1, b"second".to_vec());
        assert_eq!(store.save(&a).unwrap(), 0);
        assert_eq!(store.save(&b).unwrap(), 1);
        assert_eq!(store.list(), vec![0, 1]);

        // Simulate a crash mid-write of snapshot 2: torn prefix on disk.
        let torn = b.to_bytes();
        fs::write(store.path_for(2), &torn[..torn.len() / 2]).unwrap();
        let (seq, snap, rejected) = store.latest_valid().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(snap.section(1, "s").unwrap(), b"second");
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, 2);

        // Next save must not reuse the torn file's number.
        assert_eq!(store.save(&a).unwrap(), 3);
        let (seq, _, _) = store.latest_valid().unwrap();
        assert_eq!(seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("stash-snap-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.snap");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"twotwo").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"twotwo");
        // No stray temp file is left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
