//! Simulated time: cycles and wall-clock conversion between clock domains.
//!
//! The paper's system runs CPUs at 2 GHz and the GPU at 700 MHz (Table 2).
//! Each side of the machine is simulated in its own cycle domain; to add a
//! GPU phase and a CPU phase of an experiment together we convert both to
//! picoseconds.

/// A count of clock cycles in some clock domain.
pub type Cycle = u64;

/// Wall-clock time in picoseconds.
///
/// Picoseconds keep all arithmetic in integers: one 2 GHz CPU cycle is
/// exactly 500 ps and one 700 MHz GPU cycle is 1428 ps (we round down by
/// 4/7 ps per cycle, far below any measured effect).
pub type Picos = u64;

/// Frequency of one clock domain, with conversion helpers.
///
/// # Example
///
/// ```
/// use sim::clock::ClockDomain;
///
/// let gpu = ClockDomain::from_mhz(700);
/// assert_eq!(gpu.cycles_to_picos(700_000_000), 1_000_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    /// Frequency in kilohertz (kHz keeps both 2 GHz and 700 MHz exact).
    khz: u64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be nonzero");
        Self { khz: mhz * 1000 }
    }

    /// Frequency in megahertz (rounded down).
    pub fn mhz(self) -> u64 {
        self.khz / 1000
    }

    /// Converts a cycle count in this domain to picoseconds.
    pub fn cycles_to_picos(self, cycles: Cycle) -> Picos {
        // picos per cycle = 1e12 / (khz * 1e3) = 1e9 / khz.
        (cycles as u128 * 1_000_000_000u128 / self.khz as u128) as Picos
    }

    /// Converts picoseconds to a cycle count in this domain (rounded up, so
    /// a nonzero duration always costs at least one cycle).
    pub fn picos_to_cycles(self, picos: Picos) -> Cycle {
        let num = picos as u128 * self.khz as u128;
        num.div_ceil(1_000_000_000u128) as Cycle
    }
}

impl Default for ClockDomain {
    /// Defaults to the paper's GPU clock (700 MHz).
    fn default() -> Self {
        Self::from_mhz(700)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_cycle_is_500ps() {
        let cpu = ClockDomain::from_mhz(2000);
        assert_eq!(cpu.cycles_to_picos(1), 500);
        assert_eq!(cpu.cycles_to_picos(4), 2000);
    }

    #[test]
    fn gpu_cycle_is_1428ps() {
        let gpu = ClockDomain::from_mhz(700);
        assert_eq!(gpu.cycles_to_picos(1), 1428);
    }

    #[test]
    fn picos_round_trip_is_close() {
        let gpu = ClockDomain::from_mhz(700);
        let cycles = 1_234_567;
        let ps = gpu.cycles_to_picos(cycles);
        let back = gpu.picos_to_cycles(ps);
        assert!(back.abs_diff(cycles) <= 1);
    }

    #[test]
    fn picos_to_cycles_rounds_up() {
        let cpu = ClockDomain::from_mhz(2000);
        assert_eq!(cpu.picos_to_cycles(1), 1);
        assert_eq!(cpu.picos_to_cycles(500), 1);
        assert_eq!(cpu.picos_to_cycles(501), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::from_mhz(0);
    }
}
