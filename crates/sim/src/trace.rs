//! Cycle-attributed structured event tracing.
//!
//! A [`TraceSink`] is a fixed-capacity ring buffer of typed [`TraceEvent`]s
//! plus a per-CU [`StallBreakdown`] that attributes every simulated GPU
//! cycle to exactly one [`StallReason`]. Timing components own an
//! `Option<Box<TraceSink>>` and emit through an `#[inline]` is-some check,
//! so the disabled path costs one branch — no allocation, no formatting —
//! and simulated behaviour (latencies, counters, `state_digest`) is
//! identical with tracing on or off.
//!
//! The sink does not know the clock. Components that do (the warp
//! scheduler, the machine) stamp it via [`TraceSink::set_now`] before
//! emitting; latency-only components (the memory system internals) reuse
//! the last stamp. [`TraceSink::set_base`] shifts stamps by the cycles of
//! previously completed kernels so timestamps are monotone across a whole
//! run even though each kernel's scheduler restarts at cycle zero.

/// Where a GPU cycle went. Every cycle of every CU is attributed to
/// exactly one reason; the per-CU totals sum to the kernel cycle count
/// (enforced by integration tests across the Figure 5 matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// The issue port was busy issuing an instruction (useful work).
    Issue,
    /// Waiting on an in-flight dependency after a hit or compute op.
    Scoreboard,
    /// Extra issue slots consumed by a memory op that coalesced into more
    /// than one transaction (coalescer serialization).
    CoalescerSerial,
    /// Waiting on an outstanding miss to return from the LLC/DRAM.
    MshrWait,
    /// Issue slots consumed by NoC injection backpressure (occupancy).
    NocBackpressure,
    /// Port blocked while the stash map ring processed a map prefetch.
    StashMapRing,
    /// Waiting on a stash chunk miss being fetched from the LLC.
    StashFetch,
    /// Port blocked on a DMA transfer at a stage boundary.
    DmaWait,
    /// Cycles spent in fault-injection retry/backoff. Retries are
    /// accounting-only (schedule invariance), so this stays zero today;
    /// the bucket exists so the taxonomy is closed under future changes.
    RetryBackoff,
    /// Warp waiting at a stage barrier for the rest of its block.
    Barrier,
    /// End-of-wave drain: the port is free but the wave's slowest warp
    /// has not yet completed.
    Drain,
    /// CU idle while another CU's blocks finish the kernel.
    Idle,
    /// Fixed kernel-launch overhead cycles.
    KernelLaunch,
}

impl StallReason {
    /// Number of reasons (size of a [`StallBreakdown`]).
    pub const COUNT: usize = 13;

    /// All reasons, in breakdown-index order.
    pub const ALL: [StallReason; StallReason::COUNT] = [
        StallReason::Issue,
        StallReason::Scoreboard,
        StallReason::CoalescerSerial,
        StallReason::MshrWait,
        StallReason::NocBackpressure,
        StallReason::StashMapRing,
        StallReason::StashFetch,
        StallReason::DmaWait,
        StallReason::RetryBackoff,
        StallReason::Barrier,
        StallReason::Drain,
        StallReason::Idle,
        StallReason::KernelLaunch,
    ];

    /// Index into a [`StallBreakdown`] array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in reports and trace exports.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Issue => "issue",
            StallReason::Scoreboard => "scoreboard",
            StallReason::CoalescerSerial => "coalescer_serial",
            StallReason::MshrWait => "mshr_wait",
            StallReason::NocBackpressure => "noc_backpressure",
            StallReason::StashMapRing => "stash_map_ring",
            StallReason::StashFetch => "stash_fetch",
            StallReason::DmaWait => "dma_wait",
            StallReason::RetryBackoff => "retry_backoff",
            StallReason::Barrier => "barrier",
            StallReason::Drain => "drain",
            StallReason::Idle => "idle",
            StallReason::KernelLaunch => "kernel_launch",
        }
    }
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-CU cycle attribution: one counter per [`StallReason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    cycles: [u64; StallReason::COUNT],
}

impl StallBreakdown {
    /// Attribute `cycles` to `reason`.
    pub fn add(&mut self, reason: StallReason, cycles: u64) {
        self.cycles[reason.index()] += cycles;
    }

    /// Cycles attributed to `reason`.
    pub fn get(&self, reason: StallReason) -> u64 {
        self.cycles[reason.index()]
    }

    /// Sum over all reasons. Equals the CU's total cycles when the
    /// instrumentation holds its exact-decomposition invariant.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `(reason, cycles)` pairs in taxonomy order.
    pub fn iter(&self) -> impl Iterator<Item = (StallReason, u64)> + '_ {
        StallReason::ALL.iter().map(|&r| (r, self.get(r)))
    }

    /// Serializes the per-reason cycle counts in taxonomy order.
    pub fn save(&self, w: &mut crate::snapshot::Writer) {
        w.put_usize(StallReason::COUNT);
        for c in &self.cycles {
            w.put_u64(*c);
        }
    }

    /// Restores a breakdown written by [`StallBreakdown::save`].
    pub fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::SimError> {
        let n = r.take_usize()?;
        if n != StallReason::COUNT {
            return Err(crate::SimError::CheckpointCorrupt {
                what: "stall breakdown",
                detail: format!("{n} reasons, expected {}", StallReason::COUNT),
            });
        }
        let mut out = StallBreakdown::default();
        for c in &mut out.cycles {
            *c = r.take_u64()?;
        }
        Ok(out)
    }
}

fn stall_reason_from_index(i: u8) -> Result<StallReason, crate::SimError> {
    StallReason::ALL
        .get(i as usize)
        .copied()
        .ok_or_else(|| crate::SimError::CheckpointCorrupt {
            what: "trace event",
            detail: format!("stall reason index {i} out of range"),
        })
}

/// A typed, cycle-stamped simulation event. `at` is an absolute cycle
/// (kernel-local cycle plus the sink's base offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A warp occupied the CU issue port. `issue` is port-busy cycles,
    /// `latency` the further cycles until the result is ready.
    WarpIssue {
        /// CU index.
        cu: u32,
        /// Thread-block id.
        tb: u32,
        /// Warp slot within the wave.
        warp: u32,
        /// Issue start cycle.
        at: u64,
        /// Cycles the issue port was held.
        issue: u64,
        /// Completion latency beyond the issue cycles.
        latency: u64,
    },
    /// The issue port went idle waiting on `reason`.
    StallBegin {
        /// CU index.
        cu: u32,
        /// Thread-block id of the warp the wait is attributed to.
        tb: u32,
        /// Warp slot within the wave.
        warp: u32,
        /// Stall start cycle.
        at: u64,
        /// Why the port idled.
        reason: StallReason,
    },
    /// The stall that began at the matching [`TraceEvent::StallBegin`]
    /// ended.
    StallEnd {
        /// CU index.
        cu: u32,
        /// Thread-block id of the warp the wait is attributed to.
        tb: u32,
        /// Warp slot within the wave.
        warp: u32,
        /// Stall end cycle.
        at: u64,
        /// Why the port idled.
        reason: StallReason,
    },
    /// An L1 lookup (GPU CU or CPU core cache).
    L1Access {
        /// Node index of the owning core.
        core: u32,
        /// Cycle of the access.
        at: u64,
        /// Store (true) or load (false).
        store: bool,
        /// Hit (true) or miss (false).
        hit: bool,
    },
    /// A stash access missed its chunk and fetched words from the LLC.
    StashChunkMiss {
        /// CU index.
        cu: u32,
        /// Cycle of the access.
        at: u64,
        /// Words fetched or registered to service the miss.
        words: u32,
    },
    /// An LLC bank serviced an access.
    LlcBank {
        /// Bank index.
        bank: u32,
        /// Cycle of the access.
        at: u64,
    },
    /// A packet crossed one mesh link.
    NocHop {
        /// Source node of the link.
        from: u32,
        /// Destination node of the link.
        to: u32,
        /// Cycle the packet was injected.
        at: u64,
        /// Flits carried over the link.
        flits: u64,
        /// Virtual-network class code (0 read, 1 write, 2 writeback).
        class: u8,
    },
    /// A DMA engine moved a burst of words.
    DmaBurst {
        /// CU index the transfer belongs to.
        cu: u32,
        /// Cycle the burst started.
        at: u64,
        /// Words moved.
        words: u32,
        /// Store to global memory (true) or load into the scratchpad.
        store: bool,
        /// Total burst latency in cycles.
        cycles: u64,
    },
    /// The resilience layer re-sent a dropped or timed-out message.
    RetryFired {
        /// Cycle of the retry.
        at: u64,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// Energy-epoch marker: a kernel finished and its energy was settled.
    EnergyEpoch {
        /// Cycle the kernel ended.
        at: u64,
        /// 1-based kernel ordinal within the run.
        kernel: u32,
    },
}

impl TraceEvent {
    /// The absolute cycle the event is stamped with.
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::WarpIssue { at, .. }
            | TraceEvent::StallBegin { at, .. }
            | TraceEvent::StallEnd { at, .. }
            | TraceEvent::L1Access { at, .. }
            | TraceEvent::StashChunkMiss { at, .. }
            | TraceEvent::LlcBank { at, .. }
            | TraceEvent::NocHop { at, .. }
            | TraceEvent::DmaBurst { at, .. }
            | TraceEvent::RetryFired { at, .. }
            | TraceEvent::EnergyEpoch { at, .. } => at,
        }
    }

    /// Stable snake_case name of the event type.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::WarpIssue { .. } => "warp_issue",
            TraceEvent::StallBegin { .. } => "stall_begin",
            TraceEvent::StallEnd { .. } => "stall_end",
            TraceEvent::L1Access { .. } => "l1_access",
            TraceEvent::StashChunkMiss { .. } => "stash_chunk_miss",
            TraceEvent::LlcBank { .. } => "llc_bank",
            TraceEvent::NocHop { .. } => "noc_hop",
            TraceEvent::DmaBurst { .. } => "dma_burst",
            TraceEvent::RetryFired { .. } => "retry_fired",
            TraceEvent::EnergyEpoch { .. } => "energy_epoch",
        }
    }
}

/// Default ring capacity: enough for every microbenchmark cell without
/// drops, ~10 MB of events at the top end.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Ring-buffered event sink plus per-CU stall attribution.
///
/// When the ring is full the oldest event is overwritten (`dropped` counts
/// how many were lost); the stall breakdown is exact regardless of drops.
#[derive(Debug, Clone)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
    now: u64,
    base: u64,
    breakdown: Vec<StallBreakdown>,
}

impl TraceSink {
    /// A sink holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
            now: 0,
            base: 0,
            breakdown: Vec::new(),
        }
    }

    /// Stamp the clock: events emitted next are at kernel-local cycle
    /// `rel` (plus the base offset).
    #[inline]
    pub fn set_now(&mut self, rel: u64) {
        self.now = self.base + rel;
    }

    /// The current absolute stamp.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Absolute cycle for kernel-local cycle `rel`.
    #[inline]
    pub fn abs(&self, rel: u64) -> u64 {
        self.base + rel
    }

    /// Set the base offset (total cycles of previously completed kernels
    /// plus their launch overheads).
    pub fn set_base(&mut self, base: u64) {
        self.base = base;
        self.now = base;
    }

    /// Append an event, overwriting the oldest once at capacity.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Attribute `cycles` on CU `cu` to `reason`.
    pub fn stall(&mut self, cu: usize, reason: StallReason, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if cu >= self.breakdown.len() {
            self.breakdown.resize(cu + 1, StallBreakdown::default());
        }
        self.breakdown[cu].add(reason, cycles);
    }

    /// Retained events in emission order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Per-CU stall attribution; `None` if CU `cu` never reported.
    pub fn breakdown(&self, cu: usize) -> Option<&StallBreakdown> {
        self.breakdown.get(cu)
    }

    /// All per-CU breakdowns, indexed by CU.
    pub fn breakdowns(&self) -> &[StallBreakdown] {
        &self.breakdown
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent `n` retained events, oldest of them first. Used by
    /// the watchdog's deadlock dump to show what the machine was doing
    /// just before progress stopped.
    pub fn last_events(&self, n: usize) -> Vec<TraceEvent> {
        let all = self.events();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Serializes the complete sink — ring contents in emission order,
    /// capacity, drop count, clock stamps, and per-CU stall attribution.
    pub fn save(&self, w: &mut crate::snapshot::Writer) {
        w.put_usize(self.capacity);
        w.put_u64(self.dropped);
        w.put_u64(self.now);
        w.put_u64(self.base);
        let events = self.events();
        w.put_usize(events.len());
        for e in &events {
            save_event(w, e);
        }
        w.put_usize(self.breakdown.len());
        for b in &self.breakdown {
            b.save(w);
        }
    }

    /// Restores a sink written by [`TraceSink::save`].
    ///
    /// Events are re-pushed in emission order, so the rebuilt ring holds
    /// the same events in the same order (with `head` normalized to 0 —
    /// observable order through [`TraceSink::events`] is identical).
    pub fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::SimError> {
        let capacity = r.take_usize()?;
        let dropped = r.take_u64()?;
        let now = r.take_u64()?;
        let base = r.take_u64()?;
        let mut sink = TraceSink::new(capacity);
        let n = r.take_usize()?;
        if n > capacity.max(1) {
            return Err(crate::SimError::CheckpointCorrupt {
                what: "trace sink",
                detail: format!("{n} retained events exceed capacity {capacity}"),
            });
        }
        for _ in 0..n {
            sink.events.push(load_event(r)?);
        }
        sink.dropped = dropped;
        sink.now = now;
        sink.base = base;
        let cus = r.take_usize()?;
        sink.breakdown.reserve(cus.min(1 << 12));
        for _ in 0..cus {
            sink.breakdown.push(StallBreakdown::load(r)?);
        }
        Ok(sink)
    }

    /// Merges another sink into this one: its retained events are pushed
    /// in their emission order and its per-CU stall attribution is summed
    /// in. Used to fold a forked shard's trace back into the machine's
    /// sink; call in a deterministic shard order to keep the event stream
    /// reproducible.
    pub fn absorb(&mut self, other: &TraceSink) {
        for event in other.events() {
            self.push(event);
        }
        self.dropped += other.dropped;
        if other.breakdown.len() > self.breakdown.len() {
            self.breakdown
                .resize(other.breakdown.len(), StallBreakdown::default());
        }
        for (cu, theirs) in other.breakdown.iter().enumerate() {
            for (reason, cycles) in theirs.iter() {
                self.breakdown[cu].add(reason, cycles);
            }
        }
    }
}

fn save_event(w: &mut crate::snapshot::Writer, e: &TraceEvent) {
    match *e {
        TraceEvent::WarpIssue {
            cu,
            tb,
            warp,
            at,
            issue,
            latency,
        } => {
            w.put_u8(0);
            w.put_u32(cu);
            w.put_u32(tb);
            w.put_u32(warp);
            w.put_u64(at);
            w.put_u64(issue);
            w.put_u64(latency);
        }
        TraceEvent::StallBegin {
            cu,
            tb,
            warp,
            at,
            reason,
        } => {
            w.put_u8(1);
            w.put_u32(cu);
            w.put_u32(tb);
            w.put_u32(warp);
            w.put_u64(at);
            w.put_u8(reason.index() as u8);
        }
        TraceEvent::StallEnd {
            cu,
            tb,
            warp,
            at,
            reason,
        } => {
            w.put_u8(2);
            w.put_u32(cu);
            w.put_u32(tb);
            w.put_u32(warp);
            w.put_u64(at);
            w.put_u8(reason.index() as u8);
        }
        TraceEvent::L1Access {
            core,
            at,
            store,
            hit,
        } => {
            w.put_u8(3);
            w.put_u32(core);
            w.put_u64(at);
            w.put_bool(store);
            w.put_bool(hit);
        }
        TraceEvent::StashChunkMiss { cu, at, words } => {
            w.put_u8(4);
            w.put_u32(cu);
            w.put_u64(at);
            w.put_u32(words);
        }
        TraceEvent::LlcBank { bank, at } => {
            w.put_u8(5);
            w.put_u32(bank);
            w.put_u64(at);
        }
        TraceEvent::NocHop {
            from,
            to,
            at,
            flits,
            class,
        } => {
            w.put_u8(6);
            w.put_u32(from);
            w.put_u32(to);
            w.put_u64(at);
            w.put_u64(flits);
            w.put_u8(class);
        }
        TraceEvent::DmaBurst {
            cu,
            at,
            words,
            store,
            cycles,
        } => {
            w.put_u8(7);
            w.put_u32(cu);
            w.put_u64(at);
            w.put_u32(words);
            w.put_bool(store);
            w.put_u64(cycles);
        }
        TraceEvent::RetryFired { at, attempt } => {
            w.put_u8(8);
            w.put_u64(at);
            w.put_u32(attempt);
        }
        TraceEvent::EnergyEpoch { at, kernel } => {
            w.put_u8(9);
            w.put_u64(at);
            w.put_u32(kernel);
        }
    }
}

fn load_event(r: &mut crate::snapshot::Reader<'_>) -> Result<TraceEvent, crate::SimError> {
    Ok(match r.take_u8()? {
        0 => TraceEvent::WarpIssue {
            cu: r.take_u32()?,
            tb: r.take_u32()?,
            warp: r.take_u32()?,
            at: r.take_u64()?,
            issue: r.take_u64()?,
            latency: r.take_u64()?,
        },
        1 => TraceEvent::StallBegin {
            cu: r.take_u32()?,
            tb: r.take_u32()?,
            warp: r.take_u32()?,
            at: r.take_u64()?,
            reason: stall_reason_from_index(r.take_u8()?)?,
        },
        2 => TraceEvent::StallEnd {
            cu: r.take_u32()?,
            tb: r.take_u32()?,
            warp: r.take_u32()?,
            at: r.take_u64()?,
            reason: stall_reason_from_index(r.take_u8()?)?,
        },
        3 => TraceEvent::L1Access {
            core: r.take_u32()?,
            at: r.take_u64()?,
            store: r.take_bool()?,
            hit: r.take_bool()?,
        },
        4 => TraceEvent::StashChunkMiss {
            cu: r.take_u32()?,
            at: r.take_u64()?,
            words: r.take_u32()?,
        },
        5 => TraceEvent::LlcBank {
            bank: r.take_u32()?,
            at: r.take_u64()?,
        },
        6 => TraceEvent::NocHop {
            from: r.take_u32()?,
            to: r.take_u32()?,
            at: r.take_u64()?,
            flits: r.take_u64()?,
            class: r.take_u8()?,
        },
        7 => TraceEvent::DmaBurst {
            cu: r.take_u32()?,
            at: r.take_u64()?,
            words: r.take_u32()?,
            store: r.take_bool()?,
            cycles: r.take_u64()?,
        },
        8 => TraceEvent::RetryFired {
            at: r.take_u64()?,
            attempt: r.take_u32()?,
        },
        9 => TraceEvent::EnergyEpoch {
            at: r.take_u64()?,
            kernel: r.take_u32()?,
        },
        v => {
            return Err(crate::SimError::CheckpointCorrupt {
                what: "trace event",
                detail: format!("unknown event code {v}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_round_trips_through_snapshot() {
        let mut sink = TraceSink::new(4);
        sink.set_base(50);
        sink.set_now(3);
        for bank in 0..6u32 {
            sink.push(TraceEvent::LlcBank {
                bank,
                at: u64::from(bank),
            });
        }
        sink.push(TraceEvent::StallBegin {
            cu: 1,
            tb: 2,
            warp: 3,
            at: 9,
            reason: StallReason::StashFetch,
        });
        sink.stall(2, StallReason::Drain, 17);
        let mut w = crate::snapshot::Writer::new();
        sink.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snapshot::Reader::new(&bytes, "trace");
        let back = TraceSink::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.events(), sink.events());
        assert_eq!(back.capacity(), sink.capacity());
        assert_eq!(back.dropped(), sink.dropped());
        assert_eq!(back.now(), sink.now());
        assert_eq!(back.abs(5), sink.abs(5));
        assert_eq!(back.breakdowns(), sink.breakdowns());
    }

    #[test]
    fn last_events_returns_newest_suffix() {
        let mut sink = TraceSink::new(3);
        for bank in 0..5u32 {
            sink.push(TraceEvent::LlcBank {
                bank,
                at: u64::from(bank),
            });
        }
        let last = sink.last_events(2);
        assert_eq!(
            last,
            vec![
                TraceEvent::LlcBank { bank: 3, at: 3 },
                TraceEvent::LlcBank { bank: 4, at: 4 }
            ]
        );
        assert_eq!(sink.last_events(99).len(), 3);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut sink = TraceSink::new(3);
        for bank in 0..5u32 {
            sink.push(TraceEvent::LlcBank {
                bank,
                at: u64::from(bank),
            });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let banks: Vec<u32> = sink
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::LlcBank { bank, .. } => *bank,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(banks, vec![2, 3, 4]);
    }

    #[test]
    fn base_offset_shifts_stamps() {
        let mut sink = TraceSink::new(8);
        sink.set_now(5);
        assert_eq!(sink.now(), 5);
        sink.set_base(100);
        sink.set_now(5);
        assert_eq!(sink.now(), 105);
        assert_eq!(sink.abs(7), 107);
    }

    #[test]
    fn stall_breakdown_accumulates_per_cu() {
        let mut sink = TraceSink::new(1);
        sink.stall(1, StallReason::Issue, 10);
        sink.stall(1, StallReason::MshrWait, 4);
        sink.stall(0, StallReason::Idle, 3);
        sink.stall(1, StallReason::Issue, 0); // no-op
        assert_eq!(sink.breakdown(0).unwrap().get(StallReason::Idle), 3);
        let b1 = sink.breakdown(1).unwrap();
        assert_eq!(b1.get(StallReason::Issue), 10);
        assert_eq!(b1.get(StallReason::MshrWait), 4);
        assert_eq!(b1.total(), 14);
    }

    #[test]
    fn reason_taxonomy_is_closed() {
        assert_eq!(StallReason::ALL.len(), StallReason::COUNT);
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        let mut names: Vec<&str> = StallReason::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StallReason::COUNT, "duplicate reason name");
    }

    #[test]
    fn every_event_reports_stamp_and_kind() {
        let events = [
            TraceEvent::WarpIssue {
                cu: 0,
                tb: 1,
                warp: 2,
                at: 3,
                issue: 4,
                latency: 5,
            },
            TraceEvent::StallBegin {
                cu: 0,
                tb: 1,
                warp: 2,
                at: 3,
                reason: StallReason::Barrier,
            },
            TraceEvent::StallEnd {
                cu: 0,
                tb: 1,
                warp: 2,
                at: 4,
                reason: StallReason::Barrier,
            },
            TraceEvent::L1Access {
                core: 0,
                at: 3,
                store: false,
                hit: true,
            },
            TraceEvent::StashChunkMiss {
                cu: 0,
                at: 3,
                words: 8,
            },
            TraceEvent::LlcBank { bank: 7, at: 3 },
            TraceEvent::NocHop {
                from: 0,
                to: 1,
                at: 3,
                flits: 5,
                class: 0,
            },
            TraceEvent::DmaBurst {
                cu: 0,
                at: 3,
                words: 64,
                store: true,
                cycles: 90,
            },
            TraceEvent::RetryFired { at: 3, attempt: 1 },
            TraceEvent::EnergyEpoch { at: 3, kernel: 1 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind_name).collect();
        for e in &events {
            assert!(e.at() >= 3);
        }
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "duplicate event kind name");
    }
}
