//! Error type shared by the simulation crates.

use std::fmt;

/// An error raised by the simulator.
///
/// Most simulator APIs are infallible by construction (validated configs,
/// typed addresses); `SimError` covers the genuinely dynamic failures such
/// as a program exhausting a hardware table that the paper sizes by
/// convention (e.g. more than four `AddMap` calls per thread block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration failed validation.
    Config(String),
    /// A hardware table (map index table, stash-map, VP-map, MSHR) has no
    /// free entry and the architecture defines no spill path.
    TableFull {
        /// Which table overflowed.
        table: &'static str,
        /// Its capacity.
        capacity: usize,
    },
    /// A stash/scratchpad address fell outside the allocated space.
    OutOfRange {
        /// What was being addressed.
        what: &'static str,
        /// The offending offset.
        offset: usize,
        /// The valid size.
        size: usize,
    },
    /// An operation referenced a mapping that does not exist or is invalid.
    InvalidMapping(String),
    /// A virtual address had no translation and none could be created.
    Unmapped(u64),
    /// The dynamic footprint oracle caught a conflict certificate lying:
    /// a kernel merged through the certified fast path, but two CUs
    /// claimed ownership (registration or DMA store-through) of the same
    /// word. The certificate's soundness obligation — certified implies
    /// runtime-disjoint — is violated, so the merged state can no longer
    /// be trusted and the simulation aborts hard.
    CertificateViolation {
        /// The physical word address both CUs claimed.
        word: u64,
        /// The CU the sorted merge stream saw claim the word first.
        first_cu: usize,
        /// The conflicting CU.
        second_cu: usize,
    },
    /// A checkpoint snapshot failed integrity validation on load: bad
    /// magic, a truncated section, a CRC mismatch, or an impossible
    /// field value. The snapshot must not be restored; callers should
    /// fall back to the previous good snapshot if one exists.
    CheckpointCorrupt {
        /// What failed to validate (section tag or structural check).
        what: &'static str,
        /// Detail on the mismatch (expected vs found, offsets, ...).
        detail: String,
    },
    /// A checkpoint snapshot was written by an incompatible snapshot
    /// format version. Distinguished from corruption so tooling can
    /// report "re-run the producer" instead of "the file is damaged".
    CheckpointVersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The no-progress watchdog tripped: a request made no forward
    /// progress (all retry attempts were lost, or resilience is disabled
    /// and the only outstanding message was dropped). Carries a
    /// diagnostic dump of the in-flight state so the failure is
    /// actionable — the simulator returns this instead of hanging.
    Deadlock {
        /// The request site that stopped progressing.
        site: &'static str,
        /// How many send attempts were made before giving up.
        attempts: u32,
        /// Human-readable dump of the machine's in-flight state.
        dump: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::TableFull { table, capacity } => {
                write!(f, "hardware table {table} is full (capacity {capacity})")
            }
            SimError::OutOfRange { what, offset, size } => {
                write!(f, "{what} offset {offset} out of range (size {size})")
            }
            SimError::InvalidMapping(msg) => write!(f, "invalid mapping: {msg}"),
            SimError::Unmapped(va) => write!(f, "virtual address {va:#x} has no translation"),
            SimError::CertificateViolation {
                word,
                first_cu,
                second_cu,
            } => write!(
                f,
                "certificate violation: word {word:#x} claimed by CU {first_cu} and CU {second_cu} in a kernel certified conflict-free"
            ),
            SimError::CheckpointCorrupt { what, detail } => {
                write!(f, "checkpoint corrupt at {what}: {detail}")
            }
            SimError::CheckpointVersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} incompatible with reader version {expected}"
            ),
            SimError::Deadlock {
                site,
                attempts,
                dump,
            } => write!(
                f,
                "no forward progress at {site} after {attempts} attempt(s): {dump}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            SimError::Config("bad".into()),
            SimError::TableFull {
                table: "stash-map",
                capacity: 64,
            },
            SimError::OutOfRange {
                what: "stash",
                offset: 99,
                size: 10,
            },
            SimError::InvalidMapping("stale".into()),
            SimError::Unmapped(0x1000),
            SimError::CertificateViolation {
                word: 0x4000,
                first_cu: 0,
                second_cu: 3,
            },
            SimError::CheckpointCorrupt {
                what: "section LLC",
                detail: "crc mismatch".into(),
            },
            SimError::CheckpointVersionMismatch {
                found: 99,
                expected: 1,
            },
            SimError::Deadlock {
                site: "stash.fetch",
                attempts: 9,
                dump: "seq 17 from CU0 to LLC2".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(SimError::Unmapped(0));
    }
}
