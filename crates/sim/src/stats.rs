//! Event counters used to build the paper's figures.
//!
//! Every subsystem accounts its events into a [`Counters`] table keyed by
//! [`Counter`], a closed enum of every event the simulator can record; the
//! bench harness then reads the totals to assemble instruction-count,
//! traffic, and energy panels. The table is a flat array indexed by the
//! counter's discriminant, so the hot-path [`Counters::bump`] is a single
//! array increment — no string comparison, hashing, or search. Name-based
//! lookups ([`Counters::get`], [`Counters::sum_prefix`]) remain available
//! for report formatting and tests, off the hot path.

use std::fmt;

macro_rules! counters {
    ($($(#[$meta:meta])* $variant:ident => $name:literal,)+) => {
        /// Every event the simulator records, one variant per counter.
        ///
        /// Variants are declared in **name order** (asserted by test), so
        /// discriminant order equals lexicographic name order and the flat
        /// table iterates names sorted with no extra bookkeeping.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$meta])* $variant,)+
        }

        impl Counter {
            /// Number of distinct counters.
            pub const COUNT: usize = [$($name,)+].len();

            /// Every counter, in name order.
            pub const ALL: [Counter; Self::COUNT] = [$(Counter::$variant,)+];

            const NAMES: [&'static str; Self::COUNT] = [$($name,)+];
        }
    };
}

counters! {
    /// MESI-style line-granularity registration revoked another core's
    /// word in the same line (the §4.3 false-sharing ablation).
    CoherenceFalseSharingRevocation => "coherence.false_sharing_revocation",
    /// CPU L1 load transactions.
    CpuL1LoadTx => "cpu.l1.load_tx",
    /// CPU L1 misses.
    CpuL1Miss => "cpu.l1.miss",
    /// CPU L1 store transactions.
    CpuL1StoreTx => "cpu.l1.store_tx",
    /// Words moved by DMA transfers (ScratchGD).
    DmaWords => "dma.words",
    /// LLC misses filled from memory.
    DramLineFetch => "dram.line_fetch",
    /// Injected message delays.
    FaultDelayInjected => "fault.delay_injected",
    /// Injected DMA truncations.
    FaultDmaTruncated => "fault.dma_truncated",
    /// Injected message drops.
    FaultDropInjected => "fault.drop_injected",
    /// Injected message duplicates.
    FaultDupInjected => "fault.dup_injected",
    /// Injected data-word flips.
    FaultFlipInjected => "fault.flip_injected",
    /// Flipped words silently repaired by an overwriting store.
    FaultFlipOverwritten => "fault.flip_overwritten",
    /// Flipped words detected (and corrected) by a parity read check.
    FaultParityDetected => "fault.parity_detected",
    /// Flipped words detected by the end-of-run scrub.
    FaultScrubDetected => "fault.scrub_detected",
    /// Injected writeback losses.
    FaultWbLost => "fault.wb_lost",
    /// GPU kernel boundaries.
    GpuKernels => "gpu.kernels",
    /// GPU L1 load transactions.
    GpuL1LoadTx => "gpu.l1.load_tx",
    /// GPU L1 misses.
    GpuL1Miss => "gpu.l1.miss",
    /// GPU L1 store transactions.
    GpuL1StoreTx => "gpu.l1.store_tx",
    /// LLC bank accesses.
    LlcAccess => "llc.access",
    /// Three-leg forwards of a word registered at another core.
    RemoteForward => "remote.forward",
    /// Registry redirects back to the requesting core's other structure.
    RemoteSelfForward => "remote.self_forward",
    /// Remote stash requests whose RTLB translation had gone stale.
    RemoteStashStale => "remote.stash_stale",
    /// Backoff cycles waited by timed-out requests.
    ResilienceBackoffCycles => "resilience.backoff_cycles",
    /// Duplicate deliveries suppressed by sequence number.
    ResilienceDupSuppressed => "resilience.dup_suppressed",
    /// Transactions served by the cache fallback path.
    ResilienceFallbackTx => "resilience.fallback_tx",
    /// NACKs observed (truncated DMA length checks).
    ResilienceNack => "resilience.nack",
    /// Request re-sends after a timeout.
    ResilienceRetry => "resilience.retry",
    /// Stash mappings degraded to the cache path after allocation failure.
    ResilienceStashFallback => "resilience.stash_fallback",
    /// Request timeouts (presumed-lost messages).
    ResilienceTimeout => "resilience.timeout",
    /// Scratchpad warp transactions.
    ScratchAccess => "scratch.access",
    /// `AddMap` operations.
    StashAddMap => "stash.addmap",
    /// `AddMap`s that replicated an existing mapping (§4.5).
    StashAddMapReplicated => "stash.addmap_replicated",
    /// `ChgMap` operations.
    StashChgMap => "stash.chgmap",
    /// Words fetched into the stash on load misses.
    StashFetchWords => "stash.fetch_words",
    /// Stash transactions that hit entirely.
    StashHit => "stash.hit",
    /// Stash load transactions.
    StashLoadTx => "stash.load_tx",
    /// Stash transactions with at least one missing word.
    StashMiss => "stash.miss",
    /// Words fetched by `AddMap`-time prefetch (§8 extension).
    StashPrefetchWords => "stash.prefetch_words",
    /// Accesses to unmapped stash space (scratchpad-like).
    StashRawAccess => "stash.raw_access",
    /// Words registered at the LLC on stash store misses.
    StashRegisterWords => "stash.register_words",
    /// Loads served from a §4.5 internal replica copy.
    StashReplicaHit => "stash.replica_hit",
    /// Stash store transactions.
    StashStoreTx => "stash.store_tx",
    /// VP-map entries filled.
    StashVpFills => "stash.vp_fills",
    /// Extra words pulled in by widened fetches (§8 extension).
    StashWidenedFetch => "stash.widened_fetch",
    /// Registered words written back on L1 evictions.
    WbCacheWords => "wb.cache_words",
    /// Dirty words drained eagerly at kernel end (ablation).
    WbEagerDrained => "wb.eager_drained",
    /// Stash words lazily written back on reclamation.
    WbStashWords => "wb.stash_words",
}

impl Counter {
    /// The counter's report name (dotted hierarchy, e.g. `stash.hit`).
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }

    /// Looks a counter up by its report name.
    pub fn from_name(name: &str) -> Option<Counter> {
        // NAMES is sorted (variants are declared in name order).
        Self::NAMES.binary_search(&name).ok().map(|i| Self::ALL[i])
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A flat table of event counters, one slot per [`Counter`].
///
/// # Example
///
/// ```
/// use sim::stats::{Counter, Counters};
///
/// let mut c = Counters::new();
/// c.add(Counter::GpuL1Miss, 3);
/// c.bump(Counter::GpuL1Miss);
/// assert_eq!(c.value(Counter::GpuL1Miss), 4);
/// assert_eq!(c.get("gpu.l1.miss"), 4);
/// assert_eq!(c.get("gpu.l1.load_tx"), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    values: [u64; Counter::COUNT],
}

impl Default for Counters {
    fn default() -> Self {
        Self {
            values: [0; Counter::COUNT],
        }
    }
}

impl Counters {
    /// Creates an all-zero counter table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to one counter. A single array-indexed add.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.values[counter as usize] += n;
    }

    /// Increments one counter. A single array-indexed increment.
    #[inline]
    pub fn bump(&mut self, counter: Counter) {
        self.values[counter as usize] += 1;
    }

    /// The value of one counter.
    #[inline]
    pub fn value(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// Looks a counter up by report name; zero for unknown names.
    ///
    /// Reporting/diagnostics path — the simulator itself uses
    /// [`Counters::value`].
    pub fn get(&self, key: &str) -> u64 {
        Counter::from_name(key).map_or(0, |c| self.value(c))
    }

    /// Sums every counter under the dotted-name subtree `prefix`.
    ///
    /// Matching is segment-aware: `"stash.addmap"` selects
    /// `stash.addmap` itself and any `stash.addmap.*` children, but not
    /// the sibling `stash.addmap_replicated` — a raw `starts_with` would
    /// double-count such colliding names into component rollups. A
    /// trailing dot (`"stash."`) selects the whole subtree as before.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        let matches = |name: &str| {
            name.strip_prefix(prefix).is_some_and(|rest| {
                rest.is_empty() || rest.starts_with('.') || prefix.ends_with('.')
            })
        };
        Counter::ALL
            .iter()
            .filter(|c| matches(c.name()))
            .map(|&c| self.value(c))
            .sum()
    }

    /// Iterates over `(name, value)` pairs of *touched* (nonzero)
    /// counters, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.value(c)))
            .filter(|&(_, v)| v > 0)
    }

    /// Merges another counter table into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }

    /// Number of touched (nonzero) counters.
    pub fn len(&self) -> usize {
        self.values.iter().filter(|&&v| v > 0).count()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Serializes the table as `(name, value)` pairs of touched counters.
    ///
    /// Name-keyed so a snapshot stays loadable when new counters are
    /// added in name order; an *unknown* name in a snapshot is corruption
    /// (this build cannot account for events it has no slot for).
    pub fn save(&self, w: &mut crate::snapshot::Writer) {
        w.put_usize(self.iter().count());
        for (name, value) in self.iter() {
            w.put_str(name);
            w.put_u64(value);
        }
    }

    /// Restores a table written by [`Counters::save`].
    pub fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::SimError> {
        let n = r.take_usize()?;
        let mut out = Counters::new();
        for _ in 0..n {
            let name = r.take_str()?.to_string();
            let value = r.take_u64()?;
            let counter =
                Counter::from_name(&name).ok_or_else(|| crate::SimError::CheckpointCorrupt {
                    what: "counters",
                    detail: format!("unknown counter name {name:?}"),
                })?;
            out.add(counter, value);
        }
        Ok(out)
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(no events)");
        }
        for (k, v) in self.iter() {
            writeln!(f, "{k:<40} {v:>14}")?;
        }
        Ok(())
    }
}

impl Extend<(Counter, u64)> for Counters {
    fn extend<T: IntoIterator<Item = (Counter, u64)>>(&mut self, iter: T) {
        for (c, v) in iter {
            self.add(c, v);
        }
    }
}

impl FromIterator<(Counter, u64)> for Counters {
    fn from_iter<T: IntoIterator<Item = (Counter, u64)>>(iter: T) -> Self {
        let mut c = Counters::new();
        c.extend(iter);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sorted_and_unique() {
        // The binary search in `from_name` and the sortedness of `iter`
        // both rest on the declaration order of the variants.
        for pair in Counter::NAMES.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{} must sort before {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn every_counter_roundtrips_through_its_name() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("no.such.counter"), None);
    }

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.add(Counter::StashHit, 2);
        c.bump(Counter::StashHit);
        assert_eq!(c.value(Counter::StashHit), 3);
        assert_eq!(c.get("stash.hit"), 3);
        assert_eq!(c.get("stash.miss"), 0);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn iter_is_name_ordered_and_skips_untouched() {
        let mut c = Counters::new();
        for counter in [Counter::WbStashWords, Counter::DmaWords, Counter::LlcAccess] {
            c.bump(counter);
        }
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["dma.words", "llc.access", "wb.stash_words"]);
    }

    #[test]
    fn sum_prefix_selects_subtree() {
        let mut c = Counters::new();
        c.add(Counter::StashHit, 5);
        c.add(Counter::StashMiss, 7);
        c.add(Counter::LlcAccess, 100);
        assert_eq!(c.sum_prefix("stash."), 12);
        assert_eq!(c.sum_prefix("llc."), 100);
        assert_eq!(c.sum_prefix("dram."), 0);
    }

    #[test]
    fn sum_prefix_is_segment_aware() {
        let mut c = Counters::new();
        c.add(Counter::StashAddMap, 3);
        c.add(Counter::StashAddMapReplicated, 10);
        // "stash.addmap" must not absorb its underscore-extended sibling.
        assert_eq!(c.sum_prefix("stash.addmap"), 3);
        assert_eq!(c.sum_prefix("stash.addmap_replicated"), 10);
        assert_eq!(c.sum_prefix("stash.addmap."), 0);
        assert_eq!(c.sum_prefix("stash"), 13);
        assert_eq!(c.sum_prefix("stash."), 13);
        // A bare prefix that is only part of a segment matches nothing:
        // "dma" is a whole segment elsewhere, "dr" never is.
        c.add(Counter::DramLineFetch, 5);
        assert_eq!(c.sum_prefix("dr"), 0);
        assert_eq!(c.sum_prefix("dram"), 5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters::new();
        a.add(Counter::GpuKernels, 1);
        let mut b = Counters::new();
        b.add(Counter::GpuKernels, 2);
        b.add(Counter::DmaWords, 3);
        a.merge(&b);
        assert_eq!(a.value(Counter::GpuKernels), 3);
        assert_eq!(a.value(Counter::DmaWords), 3);
    }

    #[test]
    fn collect_from_iterator() {
        let c: Counters = [
            (Counter::StashHit, 1),
            (Counter::StashMiss, 2),
            (Counter::StashHit, 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.value(Counter::StashHit), 5);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_nonempty() {
        let mut c = Counters::new();
        assert_eq!(c.to_string(), "(no events)");
        c.add(Counter::ScratchAccess, 1);
        assert!(c.to_string().contains("scratch.access"));
    }

    #[test]
    fn bump_is_a_plain_array_index() {
        // The hot path must not allocate or search: bumping every counter
        // once touches every slot exactly once.
        let mut c = Counters::new();
        for counter in Counter::ALL {
            c.bump(counter);
        }
        assert_eq!(c.len(), Counter::COUNT);
        assert!(c.iter().all(|(_, v)| v == 1));
    }
}
