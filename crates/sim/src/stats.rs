//! Event counters used to build the paper's figures.
//!
//! Every subsystem accounts its events into a [`Counters`] table keyed by a
//! static name; the bench harness then reads the named totals to assemble
//! instruction-count, traffic, and energy panels. A tiny fixed-key table
//! (sorted `Vec`) keeps lookups cheap and the output deterministic.

use std::fmt;

/// A table of named event counters.
///
/// # Example
///
/// ```
/// use sim::stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("l1.hit", 3);
/// c.add("l1.hit", 1);
/// assert_eq!(c.get("l1.hit"), 4);
/// assert_eq!(c.get("l1.miss"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// Creates an empty counter table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter named `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &'static str, n: u64) {
        match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.entries[i].1 += n,
            Err(i) => self.entries.insert(i, (key, n)),
        }
    }

    /// Increments the counter named `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Returns the value of `key`, or zero if it was never touched.
    pub fn get(&self, key: &str) -> u64 {
        self.entries
            .binary_search_by(|(k, _)| (*k).cmp(key))
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Merges another counter table into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "(no events)");
        }
        for (k, v) in &self.entries {
            writeln!(f, "{k:<40} {v:>14}")?;
        }
        Ok(())
    }
}

impl Extend<(&'static str, u64)> for Counters {
    fn extend<T: IntoIterator<Item = (&'static str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

impl FromIterator<(&'static str, u64)> for Counters {
    fn from_iter<T: IntoIterator<Item = (&'static str, u64)>>(iter: T) -> Self {
        let mut c = Counters::new();
        c.extend(iter);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.add("a", 2);
        c.bump("a");
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn keys_stay_sorted() {
        let mut c = Counters::new();
        for k in ["zeta", "alpha", "mid"] {
            c.bump(k);
        }
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn sum_prefix_selects_subtree() {
        let mut c = Counters::new();
        c.add("noc.read", 5);
        c.add("noc.write", 7);
        c.add("l1.hit", 100);
        assert_eq!(c.sum_prefix("noc."), 12);
        assert_eq!(c.sum_prefix("l1."), 100);
        assert_eq!(c.sum_prefix("dram."), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn collect_from_iterator() {
        let c: Counters = [("a", 1), ("b", 2), ("a", 4)].into_iter().collect();
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_nonempty() {
        let mut c = Counters::new();
        assert_eq!(c.to_string(), "(no events)");
        c.add("k", 1);
        assert!(c.to_string().contains('k'));
    }
}
