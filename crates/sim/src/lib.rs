//! Simulation kernel shared by every subsystem of the stash reproduction.
//!
//! This crate provides the small, dependency-free foundation that the rest of
//! the workspace builds on:
//!
//! * [`Cycle`] — the simulated clock, plus the [`clock`] helpers for
//!   converting between the CPU and GPU clock domains of the paper's
//!   heterogeneous system (Table 2: CPU 2 GHz, GPU 700 MHz).
//! * [`config::SystemConfig`] — every parameter from Table 2 of the paper in
//!   one place, with the paper's values as defaults.
//! * [`stats`] — cheap named counters and histograms used for the
//!   instruction-count, traffic, and event accounting that the figures are
//!   built from.
//! * [`rng::SplitMix64`] — a tiny deterministic RNG so that every experiment
//!   is exactly reproducible without pulling `rand` into the core crates.
//! * [`fault`] — the seeded fault-injection schedule (message drops,
//!   delays, duplicates, word flips, lost writebacks, truncated DMAs)
//!   that the chaos harness drives through the memory system.
//! * [`trace`] — the ring-buffered, cycle-attributed event sink behind the
//!   observability layer (Perfetto export, stall attribution) in `bench`.
//! * [`snapshot`] — the versioned, checksummed binary container and
//!   crash-consistent file store behind machine-state checkpoint/restore.
//!
//! # Example
//!
//! ```
//! use sim::config::SystemConfig;
//!
//! let cfg = SystemConfig::default();
//! assert_eq!(cfg.scratchpad_bytes, 16 * 1024);
//! assert_eq!(cfg.l1_bytes, 32 * 1024);
//! ```

#![forbid(unsafe_code)]

pub mod clock;
pub mod config;
pub mod error;
pub mod fault;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod trace;

pub use clock::{Cycle, Picos};
pub use config::SystemConfig;
pub use error::SimError;
