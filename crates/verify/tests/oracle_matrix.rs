//! The runtime invariant oracle over the full Figure 5 matrix.
//!
//! Every microbenchmark × configuration cell runs with
//! `MemorySystem::set_verify(true)`, so the oracle cross-checks the
//! protocol invariants (single Registered owner, registry/owner
//! agreement, no lost registrations) after every memory-system
//! transition of the real simulation — not just the abstracted model
//! the checker in `verify::model` explores.

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use workloads::suite;

#[test]
fn figure5_matrix_passes_under_the_oracle() {
    for workload in suite::micros() {
        for kind in MemConfigKind::FIGURE5 {
            let program = (workload.build)(kind);
            let mut machine = Machine::new(workload.set.system_config(), kind);
            machine.memory_mut().set_verify(true);
            assert!(machine.memory().verify_enabled());
            let report = machine
                .run(&program)
                .unwrap_or_else(|e| panic!("{} on {kind}: {e}", workload.name));
            assert!(
                report.gpu_instructions > 0,
                "{} on {kind} simulated no GPU work",
                workload.name
            );
        }
    }
}
