//! The DRF linter is silent on every shipped workload and loud on a
//! seeded racy trace — the acceptance gate for `verify::lint`.

use gpu::config::MemConfigKind;
use verify::{lint_program, symbols_for_trace, Rule, Symbols};
use workloads::suite;
use workloads::trace::parse_trace;

#[test]
fn shipped_suite_is_race_free_under_every_configuration() {
    let empty = Symbols::new();
    for workload in suite::all() {
        for kind in MemConfigKind::ALL {
            let program = (workload.build)(kind);
            let diags = lint_program(&program, &empty);
            assert!(
                diags.is_empty(),
                "{} on {kind} flagged:\n{}",
                workload.name,
                diags
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}

#[test]
fn seeded_racy_trace_is_flagged_in_every_configuration() {
    // Two thread blocks of one kernel read-modify-write overlapping
    // element ranges of `a` (128..256 is written by both) with no
    // synchronization between blocks — a textbook cross-block data race.
    let trace = parse_trace(
        "array a elems=1024 object=4
         kernel
         block
         task a 0 256 rw global
         block
         task a 128 256 rw global",
    )
    .unwrap();
    let symbols = symbols_for_trace(&trace);
    for kind in MemConfigKind::ALL {
        let program = trace.try_build(kind).unwrap();
        let diags = lint_program(&program, &symbols);
        assert!(
            diags.iter().any(|d| d.rule == Rule::CrossBlockRace),
            "racy trace not flagged on {kind}: {diags:?}"
        );
        // The diagnostic names the array and the conflicting tasks.
        let text = diags
            .iter()
            .find(|d| d.rule == Rule::CrossBlockRace)
            .unwrap()
            .to_string();
        assert!(text.contains("a[word"), "no symbolized range in: {text}");
        assert!(
            text.contains("block 0") && text.contains("block 1"),
            "{text}"
        );
    }
}

#[test]
fn clean_trace_with_disjoint_blocks_is_silent() {
    let trace = parse_trace(
        "array a elems=1024 object=4
         kernel
         block
         task a 0 256 rw global
         block
         task a 256 256 rw global",
    )
    .unwrap();
    let symbols = symbols_for_trace(&trace);
    for kind in MemConfigKind::ALL {
        let program = trace.try_build(kind).unwrap();
        let diags = lint_program(&program, &symbols);
        assert!(diags.is_empty(), "clean trace flagged on {kind}: {diags:?}");
    }
}
