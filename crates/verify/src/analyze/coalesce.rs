//! Static coalescing analysis over symbolic lane-address streams.
//!
//! Every `GlobalMem` warp op carries the exact per-lane virtual
//! addresses the machine model will coalesce, so the analysis is not an
//! approximation: it runs the *same* [`gpu::coalescer::coalesce`] the
//! timing model uses and compares the resulting transaction count with
//! the minimum the lane set would need if it were contiguous. An AoS
//! field stride equal to the object size shatters a warp's 32 accesses
//! into up to 32 transactions (§2's poor-coalescing motivation); the
//! diagnostics quantify exactly how many extra transactions that costs.

use crate::lint::Symbols;
use gpu::coalescer::coalesce;
use gpu::program::{Phase, Program, WarpOp};
use mem::addr::WORD_BYTES;
use std::collections::HashMap;

/// Aggregated coalescing behaviour of one array's global-access stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Array name (from symbols) or the hex base of an unnamed region.
    pub region: String,
    /// `GlobalMem` warp ops touching the region.
    pub ops: u64,
    /// Total lane addresses issued.
    pub lanes: u64,
    /// Coalesced transactions the machine will issue.
    pub transactions: u64,
    /// Minimum transactions the same distinct words would need if they
    /// were contiguous (perfectly coalesced).
    pub ideal: u64,
    /// Uniform byte stride between consecutive lanes, when every
    /// multi-lane op of the stream agrees on one.
    pub stride_bytes: Option<u64>,
}

impl StreamStats {
    /// Extra transactions versus a perfectly coalesced stream.
    #[must_use]
    pub fn extra_transactions(&self) -> u64 {
        self.transactions.saturating_sub(self.ideal)
    }

    /// Average distinct words served per transaction, ×100 (so 1600 =
    /// a full 16-word line per transaction at the paper's 64 B lines).
    #[must_use]
    pub fn words_per_transaction_x100(&self, distinct_words: u64) -> u64 {
        (distinct_words * 100)
            .checked_div(self.transactions)
            .unwrap_or(0)
    }
}

/// Per-region accumulator while walking the program.
#[derive(Debug, Default)]
struct Acc {
    ops: u64,
    lanes: u64,
    transactions: u64,
    ideal: u64,
    distinct_words: u64,
    /// `None` = no multi-lane op yet; `Some(None)` = mixed strides.
    stride: Option<Option<u64>>,
}

/// Coalescing statistics of every global-access stream in `program`,
/// grouped by the array (via `symbols`) of each op's first lane.
///
/// Returns `(stats, distinct_words)` pairs sorted by region name;
/// `distinct_words` is summed per op (a word touched by two ops counts
/// twice), matching how per-op transactions accumulate.
#[must_use]
pub fn coalescing_by_region(
    program: &Program,
    symbols: &Symbols,
    line_bytes: u64,
) -> Vec<(StreamStats, u64)> {
    let words_per_line = (line_bytes / WORD_BYTES).max(1);
    let mut regions: HashMap<String, Acc> = HashMap::new();
    for phase in &program.phases {
        let Phase::Gpu(kernel) = phase else {
            continue;
        };
        for op in kernel
            .blocks
            .iter()
            .flat_map(|b| b.stages.iter())
            .flat_map(|s| s.warps.iter().flatten())
        {
            let WarpOp::GlobalMem { lanes, .. } = op else {
                continue;
            };
            if lanes.is_empty() {
                continue;
            }
            let region = match symbols.locate(lanes[0].0) {
                Some((name, _)) => name.to_string(),
                None => format!("{:#x}", lanes[0].0 & !0xfffff), // 1 MB region
            };
            let acc = regions.entry(region).or_default();
            let txs = coalesce(lanes, line_bytes);
            let mut words: Vec<u64> = lanes.iter().map(|va| va.0 / WORD_BYTES).collect();
            words.sort_unstable();
            words.dedup();
            acc.ops += 1;
            acc.lanes += lanes.len() as u64;
            acc.transactions += txs.len() as u64;
            acc.ideal += (words.len() as u64).div_ceil(words_per_line);
            acc.distinct_words += words.len() as u64;
            if lanes.len() >= 2 {
                let stride = lanes[1].0.wrapping_sub(lanes[0].0);
                let uniform = lanes
                    .windows(2)
                    .all(|w| w[1].0.wrapping_sub(w[0].0) == stride);
                let op_stride = uniform.then_some(stride);
                acc.stride = match acc.stride {
                    None => Some(op_stride),
                    Some(s) if s == op_stride => Some(s),
                    Some(_) => Some(None),
                };
            }
        }
    }
    let mut out: Vec<(StreamStats, u64)> = regions
        .into_iter()
        .map(|(region, acc)| {
            (
                StreamStats {
                    region,
                    ops: acc.ops,
                    lanes: acc.lanes,
                    transactions: acc.transactions,
                    ideal: acc.ideal,
                    stride_bytes: acc.stride.flatten(),
                },
                acc.distinct_words,
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.region.cmp(&b.0.region));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::{Kernel, Stage, ThreadBlock};
    use mem::addr::VAddr;

    fn program_with(ops: Vec<WarpOp>) -> Program {
        let mut tb = ThreadBlock::new();
        let mut stage = Stage::new(1);
        stage.warps[0] = ops;
        tb.stages.push(stage);
        Program {
            phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] })],
        }
    }

    #[test]
    fn strided_stream_reports_extra_transactions() {
        // 32 lanes at stride 16 B: 8 lines touched, ideal would be 2.
        let p = program_with(vec![WarpOp::GlobalMem {
            write: false,
            lanes: (0..32).map(|i| VAddr(0x1000 + i * 16)).collect(),
        }]);
        let mut symbols = Symbols::new();
        symbols.add("a", VAddr(0x1000), 0x1000);
        let stats = coalescing_by_region(&p, &symbols, 64);
        assert_eq!(stats.len(), 1);
        let (s, distinct) = &stats[0];
        assert_eq!(s.region, "a");
        assert_eq!(s.transactions, 8);
        assert_eq!(s.ideal, 2);
        assert_eq!(s.extra_transactions(), 6);
        assert_eq!(s.stride_bytes, Some(16));
        assert_eq!(*distinct, 32);
    }

    #[test]
    fn contiguous_stream_is_ideal() {
        let p = program_with(vec![WarpOp::GlobalMem {
            write: false,
            lanes: (0..32).map(|i| VAddr(0x2000 + i * 4)).collect(),
        }]);
        let stats = coalescing_by_region(&p, &Symbols::new(), 64);
        let (s, _) = &stats[0];
        assert_eq!(s.transactions, 2);
        assert_eq!(s.extra_transactions(), 0);
        assert_eq!(s.stride_bytes, Some(4));
    }

    #[test]
    fn mixed_strides_report_none() {
        let p = program_with(vec![
            WarpOp::GlobalMem {
                write: false,
                lanes: vec![VAddr(0x1000), VAddr(0x1010)],
            },
            WarpOp::GlobalMem {
                write: false,
                lanes: vec![VAddr(0x1000), VAddr(0x1004)],
            },
        ]);
        let stats = coalescing_by_region(&p, &Symbols::new(), 64);
        assert_eq!(stats[0].0.stride_bytes, None);
        assert_eq!(stats[0].0.ops, 2);
    }
}
