//! Waste detection: data movement the access pattern never pays back.
//!
//! Four classes, each mapping to a paper argument for one configuration:
//!
//! * **Dead stores** — a global word stored twice with no intervening
//!   read; the first store's visibility was pure overhead.
//! * **Unread writebacks** — words whose final write is never re-read
//!   by any later task or phase. A cache writes these back line by line
//!   on eviction and a scratchpad copies them out explicitly; the
//!   stash's lazy chunked writeback (§4.2) is the cheap way out.
//! * **Copy loops without reuse** — an explicit scratchpad copy-in
//!   whose words the body then reads at most once: the staging moved
//!   every word through the core for nothing (§2's "implicit" case —
//!   stash mapping or DMA wins).
//! * **Redundant DMA** — a DMA preload whose allocation the block never
//!   reads, or a DMA writeback it never writes.

use gpu::program::{DmaReq, Phase, Program, WarpOp};
use mem::addr::VAddr;
use std::collections::{HashMap, HashSet};

use super::reuse::WordEvent;

/// Dead-store and unread-writeback totals over an event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreWaste {
    /// `(word, dead store count)` for words overwritten before a read.
    pub dead: Vec<(u64, u64)>,
    /// Words whose final write no later access reads.
    pub unread: Vec<u64>,
}

/// Scans an event stream (from [`super::reuse::word_events`]) for dead
/// stores and never-re-read final writes.
#[must_use]
pub fn store_waste(events: &[WordEvent]) -> StoreWaste {
    #[derive(Default)]
    struct WordInfo {
        dead: u64,
        written: bool,
        read_since_write: bool,
    }
    let mut words: HashMap<u64, WordInfo> = HashMap::new();
    for e in events {
        let info = words.entry(e.word).or_default();
        if e.write {
            if info.written && !info.read_since_write {
                info.dead += 1;
            }
            info.written = true;
            info.read_since_write = false;
        } else if info.written {
            info.read_since_write = true;
        }
    }
    let mut dead: Vec<(u64, u64)> = words
        .iter()
        .filter(|(_, i)| i.dead > 0)
        .map(|(&w, i)| (w, i.dead))
        .collect();
    dead.sort_unstable();
    let mut unread: Vec<u64> = words
        .iter()
        .filter(|(_, i)| i.written && !i.read_since_write)
        .map(|(&w, _)| w)
        .collect();
    unread.sort_unstable();
    StoreWaste { dead, unread }
}

/// One explicit copy-in site (per thread block and allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopySite {
    /// Phase index of the kernel.
    pub phase: u32,
    /// Thread-block index within the kernel.
    pub block: u32,
    /// Words moved by the copy-in loops.
    pub copied_lanes: u64,
    /// Body reads of the copied allocation (copy-out reads excluded).
    pub body_read_lanes: u64,
    /// First global address the copy loads from (for symbolization).
    pub global_base: VAddr,
}

impl CopySite {
    /// True when each copied word is read at most once — the staging
    /// bought no reuse.
    #[must_use]
    pub fn no_reuse(&self) -> bool {
        self.body_read_lanes <= self.copied_lanes
    }
}

/// Finds explicit copy-in loops and how often the body re-reads their
/// data.
///
/// The scratchpad lowering emits a copy-in as a `GlobalMem` load
/// immediately followed by a `LocalMem` store of the same words, and a
/// copy-out as a `LocalMem` load immediately followed by a `GlobalMem`
/// store; the scan recognizes those adjacent pairs in each warp's
/// stream and attributes the remaining `LocalMem` reads to the body.
#[must_use]
pub fn copy_sites(program: &Program) -> Vec<CopySite> {
    let mut out = Vec::new();
    for (pi, phase) in program.phases.iter().enumerate() {
        let Phase::Gpu(kernel) = phase else {
            continue;
        };
        for (b, block) in kernel.blocks.iter().enumerate() {
            // allocation id → (copied lanes, body reads, first global va)
            let mut per_alloc: HashMap<usize, (u64, u64, VAddr)> = HashMap::new();
            for ops in block.stages.iter().flat_map(|s| s.warps.iter()) {
                let mut i = 0;
                while i < ops.len() {
                    match (&ops[i], ops.get(i + 1)) {
                        // Copy-in: global load + local store.
                        (
                            WarpOp::GlobalMem {
                                write: false,
                                lanes: glanes,
                            },
                            Some(WarpOp::LocalMem {
                                write: true, alloc, ..
                            }),
                        ) if !glanes.is_empty() => {
                            let e = per_alloc.entry(alloc.0).or_insert((0, 0, glanes[0]));
                            e.0 += glanes.len() as u64;
                            i += 2;
                        }
                        // Copy-out: local load + global store.
                        (
                            WarpOp::LocalMem { write: false, .. },
                            Some(WarpOp::GlobalMem { write: true, .. }),
                        ) => {
                            i += 2;
                        }
                        (
                            WarpOp::LocalMem {
                                write: false,
                                alloc,
                                lanes,
                                ..
                            },
                            _,
                        ) => {
                            let e = per_alloc.entry(alloc.0).or_insert((0, 0, VAddr(0)));
                            e.1 += lanes.len() as u64;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            for (_, (copied, body_reads, base)) in per_alloc {
                if copied > 0 {
                    out.push(CopySite {
                        phase: u32::try_from(pi).unwrap_or(u32::MAX),
                        block: u32::try_from(b).unwrap_or(u32::MAX),
                        copied_lanes: copied,
                        body_read_lanes: body_reads,
                        global_base: base,
                    });
                }
            }
        }
    }
    out.sort_by_key(|s| (s.phase, s.block, s.global_base.0));
    out
}

/// One DMA request whose data the block never touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaWaste {
    /// Phase index of the kernel.
    pub phase: u32,
    /// Thread-block index within the kernel.
    pub block: u32,
    /// The unused preload (`load`) or writeback (`store`) direction.
    pub unused_load: bool,
    /// See `unused_load`.
    pub unused_store: bool,
    /// The tile's global base (for symbolization).
    pub global_base: VAddr,
}

/// Finds DMA requests transferring data the block never reads (loads)
/// or never writes (stores).
#[must_use]
pub fn redundant_dma(program: &Program) -> Vec<DmaWaste> {
    let mut out = Vec::new();
    for (pi, phase) in program.phases.iter().enumerate() {
        let Phase::Gpu(kernel) = phase else {
            continue;
        };
        for (b, block) in kernel.blocks.iter().enumerate() {
            let mut read_allocs: HashSet<usize> = HashSet::new();
            let mut written_allocs: HashSet<usize> = HashSet::new();
            for op in block.stages.iter().flat_map(|s| s.warps.iter().flatten()) {
                if let WarpOp::LocalMem { write, alloc, .. } = op {
                    if *write {
                        written_allocs.insert(alloc.0);
                    } else {
                        read_allocs.insert(alloc.0);
                    }
                }
            }
            let dma_reqs = block.stages.iter().flat_map(|s| s.dmas.iter());
            for req in dma_reqs {
                let DmaReq {
                    alloc,
                    tile,
                    load,
                    store,
                } = req;
                let unused_load = *load && !read_allocs.contains(&alloc.0);
                let unused_store = *store && !written_allocs.contains(&alloc.0);
                if unused_load || unused_store {
                    out.push(DmaWaste {
                        phase: u32::try_from(pi).unwrap_or(u32::MAX),
                        block: u32::try_from(b).unwrap_or(u32::MAX),
                        unused_load,
                        unused_store,
                        global_base: tile.global_base(),
                    });
                }
            }
        }
    }
    out
}

/// Counts unmapped-temporary local words that are written but never
/// read within their block — dead private data.
#[must_use]
pub fn write_only_temp_words(program: &Program) -> u64 {
    let mut total = 0u64;
    for phase in &program.phases {
        let Phase::Gpu(kernel) = phase else {
            continue;
        };
        for block in &kernel.blocks {
            let mapped: HashSet<usize> = block.maps().map(|m| m.alloc.0).collect();
            // alloc → (written lanes, read lanes)
            let mut temps: HashMap<usize, (HashSet<u32>, HashSet<u32>)> = HashMap::new();
            for op in block.stages.iter().flat_map(|s| s.warps.iter().flatten()) {
                let WarpOp::LocalMem {
                    write,
                    alloc,
                    lanes,
                    ..
                } = op
                else {
                    continue;
                };
                if mapped.contains(&alloc.0) {
                    continue;
                }
                let e = temps.entry(alloc.0).or_default();
                for &lane in lanes {
                    if *write {
                        e.0.insert(lane);
                    } else {
                        e.1.insert(lane);
                    }
                }
            }
            for (written, read) in temps.values() {
                total += written.iter().filter(|l| !read.contains(l)).count() as u64;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::super::reuse::word_events;
    use super::*;
    use gpu::program::{AllocId, Kernel, LocalAlloc, Stage, ThreadBlock};
    use mem::tile::TileMap;

    fn block_with(ops: Vec<WarpOp>) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 32 });
        let mut stage = Stage::new(1);
        stage.warps[0] = ops;
        tb.stages.push(stage);
        tb
    }

    fn one_kernel(blocks: Vec<ThreadBlock>) -> Program {
        Program {
            phases: vec![Phase::Gpu(Kernel { blocks })],
        }
    }

    fn global(write: bool, base: u64, words: u64) -> WarpOp {
        WarpOp::GlobalMem {
            write,
            lanes: (0..words).map(|w| VAddr(base + w * 4)).collect(),
        }
    }

    fn local(write: bool, lanes: std::ops::Range<u32>) -> WarpOp {
        WarpOp::LocalMem {
            write,
            alloc: AllocId(0),
            slot: usize::MAX,
            lanes: lanes.collect(),
        }
    }

    #[test]
    fn double_store_without_read_is_dead() {
        let p = one_kernel(vec![block_with(vec![
            global(true, 0x1000, 4),
            global(true, 0x1000, 4),
        ])]);
        let waste = store_waste(&word_events(&p));
        assert_eq!(waste.dead.len(), 4);
        assert_eq!(waste.dead[0], (0x1000 / 4, 1));
        // The final writes are also never re-read.
        assert_eq!(waste.unread.len(), 4);
    }

    #[test]
    fn store_then_read_is_not_dead() {
        let p = one_kernel(vec![block_with(vec![
            global(true, 0x1000, 4),
            global(false, 0x1000, 4),
            global(true, 0x1000, 4),
        ])]);
        let waste = store_waste(&word_events(&p));
        assert!(waste.dead.is_empty());
        assert_eq!(waste.unread.len(), 4, "final writes are unread");
    }

    #[test]
    fn copy_without_reuse_is_flagged() {
        // Copy-in of 8 words, body reads them once, copy-out.
        let p = one_kernel(vec![block_with(vec![
            WarpOp::Compute(4),
            global(false, 0x1000, 8),
            local(true, 0..8),
            WarpOp::Compute(3),
            local(false, 0..8), // body read (one use per word)
            local(true, 0..8),  // body write
            WarpOp::Compute(4),
            local(false, 0..8), // copy-out read
            global(true, 0x1000, 8),
        ])]);
        let sites = copy_sites(&p);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].copied_lanes, 8);
        assert_eq!(sites[0].body_read_lanes, 8);
        assert!(sites[0].no_reuse());
    }

    #[test]
    fn copy_with_reuse_is_clean() {
        // Body reads each copied word twice (two passes).
        let p = one_kernel(vec![block_with(vec![
            global(false, 0x1000, 8),
            local(true, 0..8),
            local(false, 0..8),
            local(false, 0..8),
        ])]);
        let sites = copy_sites(&p);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].body_read_lanes, 16);
        assert!(!sites[0].no_reuse());
    }

    #[test]
    fn dma_load_with_unread_allocation_is_redundant() {
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 8, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 8 });
        let mut stage = Stage::new(1);
        stage.dmas.push(DmaReq {
            alloc: AllocId(0),
            tile,
            load: true,
            store: false,
        });
        // The block computes but never touches the preloaded data.
        stage.warps[0] = vec![WarpOp::Compute(8)];
        tb.stages.push(stage);
        let waste = redundant_dma(&one_kernel(vec![tb]));
        assert_eq!(waste.len(), 1);
        assert!(waste[0].unused_load && !waste[0].unused_store);
    }

    #[test]
    fn used_dma_is_clean() {
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 8, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 8 });
        let mut stage = Stage::new(1);
        stage.dmas.push(DmaReq {
            alloc: AllocId(0),
            tile,
            load: true,
            store: true,
        });
        stage.warps[0] = vec![local(false, 0..8), local(true, 0..8)];
        tb.stages.push(stage);
        assert!(redundant_dma(&one_kernel(vec![tb])).is_empty());
    }

    #[test]
    fn write_only_temp_is_counted() {
        let p = one_kernel(vec![block_with(vec![
            local(true, 0..8),
            local(false, 0..4), // half the words are read back
        ])]);
        assert_eq!(write_only_temp_words(&p), 4);
    }
}
