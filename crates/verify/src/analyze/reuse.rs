//! Word-granular reuse analysis: LRU stack distances and reuse scopes.
//!
//! Two views of the same access stream feed the analyzer:
//!
//! * [`reuse_distances`] — the classic LRU *stack distance* of every
//!   access (the number of distinct other addresses touched since the
//!   previous access to the same address). For a fully-associative LRU
//!   cache of capacity `C`, an access hits iff its stack distance is
//!   `< C`, which is what the capacity-thrash predictor uses.
//! * [`classify_events`] — each repeated access classified by *scope*:
//!   within one task (thread block / CPU core), across tasks of one
//!   phase, or across phase boundaries. Cross-phase reuse is the
//!   paper's motivating case for the stash: registered words survive a
//!   kernel's end-of-kernel self-invalidation, so cross-kernel reuse
//!   hits in the stash but misses in a cache or is re-copied by a
//!   scratchpad (§3, "reuse").

use gpu::program::{CpuOp, Phase, Program, WarpOp};
use mem::addr::WORD_BYTES;
use mem::tile::TileMap;
use std::collections::HashMap;

/// One global-memory word access, in program order.
///
/// `phase` is the program phase index; `task` is the thread-block index
/// within a GPU kernel or the core index within a CPU phase. `LocalMem`
/// lanes are translated through their stage's active tile bindings
/// (mapped stash/scratch data *is* global data); unmapped temporaries
/// carry no global identity and are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordEvent {
    /// Global word number (byte address / 4).
    pub word: u64,
    /// Phase index in the program.
    pub phase: u32,
    /// Task (thread block or CPU core) within the phase.
    pub task: u32,
    /// Whether the access writes.
    pub write: bool,
}

/// Reuse totals of one access stream, by scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseSummary {
    /// Total accesses.
    pub accesses: u64,
    /// Distinct words touched.
    pub distinct_words: u64,
    /// Repeated accesses whose previous access was the same task of the
    /// same phase.
    pub intra_task: u64,
    /// Repeated accesses whose previous access was a different task of
    /// the same phase.
    pub cross_task: u64,
    /// Repeated accesses whose previous access was an earlier phase
    /// (kernel or CPU phase) — the stash-retention case.
    pub cross_phase: u64,
}

impl ReuseSummary {
    /// Total repeated accesses (all scopes).
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.intra_task + self.cross_task + self.cross_phase
    }
}

/// Fenwick tree over access positions; `tree[i]` marks positions that
/// are the *most recent* occurrence of their address so far.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks at positions `0..=i`.
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// LRU stack distance of every access in `stream`.
///
/// `None` marks a cold (first) access; `Some(d)` means `d` distinct
/// other addresses were touched since the previous access to this one.
/// Runs in `O(n log n)` via a Fenwick tree over last-occurrence marks.
#[must_use]
pub fn reuse_distances(stream: &[u64]) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(stream.len());
    let mut fen = Fenwick::new(stream.len());
    let mut last: HashMap<u64, usize> = HashMap::new();
    for (i, &addr) in stream.iter().enumerate() {
        match last.get(&addr) {
            Some(&p) => {
                // Marked positions in (p, i) are exactly the distinct
                // other addresses accessed since position p.
                let between = fen.prefix(i.saturating_sub(1)) - fen.prefix(p);
                out.push(Some(u64::try_from(between).unwrap_or(0)));
                fen.add(p, -1);
            }
            None => out.push(None),
        }
        fen.add(i, 1);
        last.insert(addr, i);
    }
    out
}

/// Classifies every repeated access in `events` by reuse scope.
#[must_use]
pub fn classify_events(events: &[WordEvent]) -> ReuseSummary {
    let mut summary = ReuseSummary::default();
    let mut last: HashMap<u64, (u32, u32)> = HashMap::new();
    for e in events {
        summary.accesses += 1;
        match last.insert(e.word, (e.phase, e.task)) {
            None => summary.distinct_words += 1,
            Some((phase, task)) => {
                if phase != e.phase {
                    summary.cross_phase += 1;
                } else if task != e.task {
                    summary.cross_task += 1;
                } else {
                    summary.intra_task += 1;
                }
            }
        }
    }
    summary
}

/// Extracts the program-order stream of global-word accesses.
///
/// GPU blocks are walked in kernel order (stage by stage, warp by warp);
/// within a phase the cross-task order is schedule-dependent in the real
/// machine, but scope classification only compares phase/task identity,
/// so any program-order linearization yields the same summary for
/// data-race-free inputs.
#[must_use]
pub fn word_events(program: &Program) -> Vec<WordEvent> {
    let mut out = Vec::new();
    for (pi, phase) in program.phases.iter().enumerate() {
        let pi = u32::try_from(pi).unwrap_or(u32::MAX);
        match phase {
            Phase::Gpu(kernel) => {
                for (b, block) in kernel.blocks.iter().enumerate() {
                    let task = u32::try_from(b).unwrap_or(u32::MAX);
                    let mut bindings: HashMap<usize, TileMap> = HashMap::new();
                    for stage in &block.stages {
                        for m in &stage.maps {
                            if m.mode.is_mapped() {
                                bindings.insert(m.slot, m.tile);
                            }
                        }
                        for d in &stage.dmas {
                            push_tile_events(&mut out, &d.tile, pi, task, d.load, d.store);
                        }
                        for op in stage.warps.iter().flatten() {
                            push_warp_event(&mut out, op, &bindings, pi, task);
                        }
                    }
                }
            }
            Phase::Cpu(cpu) => {
                for (c, ops) in cpu.per_core.iter().enumerate() {
                    let task = u32::try_from(c).unwrap_or(u32::MAX);
                    let maps = cpu.stash_maps.get(c);
                    for op in ops {
                        match op {
                            CpuOp::Compute(_) => {}
                            CpuOp::Mem { write, vaddr } => out.push(WordEvent {
                                word: vaddr.0 / WORD_BYTES,
                                phase: pi,
                                task,
                                write: *write,
                            }),
                            CpuOp::StashMem { write, slot, word } => {
                                let Some(tile) = maps.and_then(|m| m.get(*slot)) else {
                                    continue;
                                };
                                if u64::from(*word) >= tile.local_words() {
                                    continue;
                                }
                                let va = tile.virt_of_local_offset(u64::from(*word) * WORD_BYTES);
                                out.push(WordEvent {
                                    word: va.0 / WORD_BYTES,
                                    phase: pi,
                                    task,
                                    write: *write,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn push_warp_event(
    out: &mut Vec<WordEvent>,
    op: &WarpOp,
    bindings: &HashMap<usize, TileMap>,
    phase: u32,
    task: u32,
) {
    match op {
        WarpOp::Compute(_) => {}
        WarpOp::GlobalMem { write, lanes } => {
            for va in lanes {
                out.push(WordEvent {
                    word: va.0 / WORD_BYTES,
                    phase,
                    task,
                    write: *write,
                });
            }
        }
        WarpOp::LocalMem {
            write, slot, lanes, ..
        } => {
            let Some(tile) = bindings.get(slot) else {
                return; // Unmapped temporary: no global identity.
            };
            for &lane in lanes {
                let lane = u64::from(lane);
                if lane >= tile.local_words() {
                    continue; // The linter reports out-of-bounds lanes.
                }
                let va = tile.virt_of_local_offset(lane * WORD_BYTES);
                out.push(WordEvent {
                    word: va.0 / WORD_BYTES,
                    phase,
                    task,
                    write: *write,
                });
            }
        }
    }
}

fn push_tile_events(
    out: &mut Vec<WordEvent>,
    tile: &TileMap,
    phase: u32,
    task: u32,
    load: bool,
    store: bool,
) {
    let words = tile.words_per_field();
    for va in tile.iter_field_vaddrs() {
        for w in 0..words {
            let word = va.0 / WORD_BYTES + w;
            if load {
                out.push(WordEvent {
                    word,
                    phase,
                    task,
                    write: false,
                });
            }
            if store {
                out.push(WordEvent {
                    word,
                    phase,
                    task,
                    write: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::rng::SplitMix64;

    /// O(n²) reference: scan back for the previous occurrence, count
    /// distinct addresses in between.
    fn naive_reuse_distances(stream: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(stream.len());
        for (i, &addr) in stream.iter().enumerate() {
            let prev = (0..i).rev().find(|&j| stream[j] == addr);
            out.push(prev.map(|p| {
                let mut distinct: Vec<u64> = stream[p + 1..i].to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.retain(|&a| a != addr);
                distinct.len() as u64
            }));
        }
        out
    }

    #[test]
    fn known_stack_distances() {
        // a b c a  → a's reuse sees {b, c} = distance 2.
        assert_eq!(
            reuse_distances(&[1, 2, 3, 1]),
            vec![None, None, None, Some(2)]
        );
        // Immediate repetition has distance 0.
        assert_eq!(reuse_distances(&[7, 7, 7]), vec![None, Some(0), Some(0)]);
        assert_eq!(reuse_distances(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn repeats_between_reuses_count_once() {
        // a b b b a: only one distinct address between the two a's.
        assert_eq!(
            reuse_distances(&[1, 2, 2, 2, 1]),
            vec![None, None, Some(0), Some(0), Some(1)]
        );
    }

    #[test]
    fn random_streams_match_naive_reference() {
        let mut rng = SplitMix64::new(0x5EED_CAFE);
        for round in 0..64 {
            let len = (rng.next_u64() % 200) as usize;
            let space = 1 + rng.next_u64() % 32;
            let stream: Vec<u64> = (0..len).map(|_| rng.next_u64() % space).collect();
            assert_eq!(
                reuse_distances(&stream),
                naive_reuse_distances(&stream),
                "round {round}: stream {stream:?}"
            );
        }
    }

    #[test]
    fn long_random_stream_matches_naive_reference() {
        let mut rng = SplitMix64::new(42);
        let stream: Vec<u64> = (0..2000).map(|_| rng.next_u64() % 97).collect();
        assert_eq!(reuse_distances(&stream), naive_reuse_distances(&stream));
    }

    #[test]
    fn classification_by_scope() {
        let ev = |word, phase, task| WordEvent {
            word,
            phase,
            task,
            write: false,
        };
        let events = [
            ev(1, 0, 0), // cold
            ev(1, 0, 0), // intra-task
            ev(1, 0, 1), // cross-task
            ev(1, 1, 0), // cross-phase
            ev(2, 1, 0), // cold
        ];
        let s = classify_events(&events);
        assert_eq!(s.accesses, 5);
        assert_eq!(s.distinct_words, 2);
        assert_eq!(s.intra_task, 1);
        assert_eq!(s.cross_task, 1);
        assert_eq!(s.cross_phase, 1);
        assert_eq!(s.reuses(), 3);
    }

    #[test]
    fn stack_distance_predicts_lru_hits() {
        // Sanity-check the contract the thrash predictor relies on: with
        // capacity 2, the stream a b a c a b hits exactly where the
        // stack distance is < 2.
        let stream = [1u64, 2, 1, 3, 1, 2];
        let hits: Vec<bool> = reuse_distances(&stream)
            .iter()
            .map(|d| d.is_some_and(|d| d < 2))
            .collect();
        assert_eq!(hits, vec![false, false, true, false, true, false]);
    }
}
