//! Static performance prediction: counters and a placement cost model.
//!
//! Two passes over a lowered [`Program`] produce a [`Prediction`] for one
//! memory configuration:
//!
//! 1. **Exact structural pass.** Several simulator counters are fully
//!    determined by program structure — transaction counts fall out of
//!    running the real [`gpu::coalescer::coalesce`] over each op's lane
//!    addresses, local-memory op counts classify by slot binding, and the
//!    instruction total replays the machine's accounting (warp
//!    instructions + one per map setup + one per warp per DMA transfer).
//!    These go in [`Prediction::exact`] and must match the simulator
//!    *exactly*; any divergence is a bug in the analyzer or the machine.
//!
//! 2. **Functional replay.** Hit ratios depend on cache *content*, so the
//!    analyzer replays the access stream against small functional models:
//!    per-core set-associative word-granular L1s with DeNovo states
//!    (Shared / Registered, stores hit only Registered), a per-CU stash
//!    content model keyed by global word, and a cross-agent ownership
//!    registry for registration revocation and forwarding. The models are
//!    functional, not timing-accurate — thread blocks replay in
//!    assignment order rather than the machine's cycle-interleaved wave
//!    schedule — so these counters carry documented tolerances (see
//!    [`crate::analyze`]) instead of exact equality.
//!
//! The replay also integrates a coarse cost model (constants below) into
//! [`Prediction::est_picos`]. Its purpose is *ranking* configurations for
//! the placement advisor, not absolute runtime prediction; the
//! cross-validation suite checks the ranking against the simulator, not
//! the absolute value.

use gpu::coalescer::coalesce;
use gpu::config::MemConfigKind;
use gpu::program::{CpuOp, Phase, Program, ThreadBlock, WarpOp};
use mem::addr::WORD_BYTES;
use mem::tile::TileMap;
use sim::config::SystemConfig;
use sim::stats::Counter;
use std::collections::{HashMap, HashSet, VecDeque};

/// Issue-port occupancy of a load miss's network injection (request
/// flit + a line of response data at two flits per cycle).
const LOAD_MISS_OCCUPANCY: u64 = 3;

/// Issue-port occupancy of a store miss (two control flits).
const STORE_MISS_OCCUPANCY: u64 = 1;

/// Calibration ratio (`num`/`den`) applied to the geometric mean network
/// round trip: the machine overlaps part of each traversal with bank
/// service, so the *exposed* mean is below the geometric one. The ratio
/// is pinned so the paper's point (4×4 mesh, 16 agents, 16 banks, hop
/// cost 5/5) evaluates to exactly the 10 cycles PR 3's flat
/// `AVG_MESH_HOPS = 2` constant charged — defaults stay byte-identical.
const NET_CALIB_NUM: u64 = 4;
const NET_CALIB_DEN: u64 = 5;

/// NoC injection: flits per cycle (shared with the machine's DMA model).
const FLITS_PER_CYCLE: u64 = 2;

/// Payload bytes per data flit.
const FLIT_BYTES: u64 = 16;

/// One additive bucket of the cost model. The replay accumulates every
/// charge it makes into the matching bucket *before* the wave/port `max`
/// operators combine them, so the buckets are **exposure weights** — how
/// much raw latency each mechanism contributed — not an exact
/// decomposition of `est_picos`. The DSE misrank report uses them to
/// symbolize which term most separates two disputed design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostTerm {
    /// Warp issue / CU port occupancy (compute + transaction injection).
    Issue,
    /// L1 / stash / scratchpad hit latency.
    L1Hit,
    /// NoC + L2 bank round trips (the calibrated mean per miss).
    NocL2,
    /// DRAM latency on cold lines.
    Dram,
    /// Remote-forward latency (registered-elsewhere words).
    RemoteFwd,
    /// Stash-map translation on stash misses.
    StashXlat,
    /// DMA transfer occupancy + latency.
    Dma,
    /// Kernel launch overhead.
    Launch,
    /// CPU phase cycles.
    Cpu,
}

impl CostTerm {
    /// Every bucket, in accumulation-report order.
    pub const ALL: [CostTerm; 9] = [
        CostTerm::Issue,
        CostTerm::L1Hit,
        CostTerm::NocL2,
        CostTerm::Dram,
        CostTerm::RemoteFwd,
        CostTerm::StashXlat,
        CostTerm::Dma,
        CostTerm::Launch,
        CostTerm::Cpu,
    ];

    /// Stable display name (used in misrank diagnostics).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CostTerm::Issue => "issue",
            CostTerm::L1Hit => "l1-hit",
            CostTerm::NocL2 => "noc-l2",
            CostTerm::Dram => "dram",
            CostTerm::RemoteFwd => "remote-fwd",
            CostTerm::StashXlat => "stash-xlat",
            CostTerm::Dma => "dma",
            CostTerm::Launch => "launch",
            CostTerm::Cpu => "cpu",
        }
    }
}

/// The calibrated mean L2 round trip for a machine: base bank service
/// plus the mean network round trip over every (agent tile, bank home
/// tile) pair — agents co-locate as `agent % nodes`, bank homes as
/// `bank % nodes`, exactly the machine's placement — scaled by the
/// `NET_CALIB_NUM`/`NET_CALIB_DEN` exposure calibration.
#[must_use]
pub fn mean_l2_round_cycles(sys: &SystemConfig) -> u64 {
    let nodes = sys.mesh_nodes() as u64;
    let side = sys.mesh_side as u64;
    let agents = (sys.gpu_cus + sys.cpu_cores) as u64;
    let banks = sys.l2_banks as u64;
    let mut total = 0u64;
    for a in 0..agents {
        let an = a % nodes;
        let (ax, ay) = (an % side, an / side);
        for b in 0..banks {
            let bn = b % nodes;
            let (bx, by) = (bn % side, bn / side);
            total += ax.abs_diff(bx) * sys.hop_round_trip_cycles
                + ay.abs_diff(by) * sys.hop_round_trip_cycles_y;
        }
    }
    sys.l2_base_cycles + (total * NET_CALIB_NUM) / (NET_CALIB_DEN * agents * banks)
}

/// A static performance prediction for one memory configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    /// The configuration this prediction is for.
    pub kind: MemConfigKind,
    /// GPU instructions the machine will report (exact).
    pub gpu_instructions: u64,
    /// Counters determined exactly by program structure.
    pub exact: Vec<(Counter, u64)>,
    /// Counters estimated by the functional replay (tolerance-checked).
    pub modeled: Vec<(Counter, u64)>,
    /// Cost-model estimate of total runtime, in picoseconds. Meaningful
    /// only for *ranking* configurations of the same workload.
    pub est_picos: u64,
    /// Exposure weight of each [`CostTerm`] bucket, in cycles, aligned
    /// with [`CostTerm::ALL`]. Diagnostic: see the enum docs.
    pub terms: Vec<(CostTerm, u64)>,
}

impl Prediction {
    /// Looks up a predicted counter value (exact first, then modeled).
    #[must_use]
    pub fn counter(&self, c: Counter) -> Option<u64> {
        self.exact
            .iter()
            .chain(self.modeled.iter())
            .find(|(k, _)| *k == c)
            .map(|&(_, v)| v)
    }

    /// Predicted hit ratio of the stash (hits / (hits + misses)), if this
    /// configuration has one and it was accessed.
    #[must_use]
    pub fn stash_hit_ratio(&self) -> Option<f64> {
        let h = self.counter(Counter::StashHit)?;
        let m = self.counter(Counter::StashMiss)?;
        #[allow(clippy::cast_precision_loss)]
        match h + m {
            0 => None,
            t => Some(h as f64 / t as f64),
        }
    }
}

/// One word-granular L1 line: DeNovo Shared/Registered bit per word.
#[derive(Debug, Clone, Copy)]
struct LineEntry {
    line: u64,
    last_use: u64,
    shared: u32,
    registered: u32,
}

/// A set-associative word-granular L1 model (same geometry as the
/// machine's; the frame allocator preserves page-internal line indices,
/// so virtual set indexing matches the physically indexed cache).
#[derive(Debug)]
struct L1Model {
    sets: usize,
    ways: usize,
    slots: Vec<Option<LineEntry>>,
    tick: u64,
}

impl L1Model {
    fn new(sys: &SystemConfig) -> Self {
        let sets = sys.l1_bytes / sys.line_bytes / sys.l1_ways;
        Self {
            sets,
            ways: sys.l1_ways,
            slots: vec![None; sets * sys.l1_ways],
            tick: 0,
        }
    }

    fn slot_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.sets as u64) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, line: u64) -> Option<usize> {
        self.slot_range(line)
            .find(|&i| self.slots[i].is_some_and(|e| e.line == line))
    }

    /// Whether every word in `mask` satisfies the access: stores hit only
    /// Registered words, loads hit Shared or Registered.
    fn hits(&mut self, line: u64, mask: u32, write: bool) -> bool {
        let Some(i) = self.find(line) else {
            return false;
        };
        let e = self.slots[i].as_mut().expect("found slot occupied");
        let valid = if write {
            e.registered
        } else {
            e.shared | e.registered
        };
        if valid & mask == mask {
            self.tick += 1;
            e.last_use = self.tick;
            true
        } else {
            false
        }
    }

    /// Makes `line` resident, returning the evicted entry if a victim was
    /// displaced. Mirrors the machine: prefer an empty way, else LRU.
    fn ensure(&mut self, line: u64) -> Option<LineEntry> {
        self.tick += 1;
        if let Some(i) = self.find(line) {
            self.slots[i].as_mut().expect("occupied").last_use = self.tick;
            return None;
        }
        let range = self.slot_range(line);
        let slot = range
            .clone()
            .find(|&i| self.slots[i].is_none())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.slots[i].expect("full set").last_use)
                    .expect("ways > 0")
            });
        let evicted = self.slots[slot].take();
        self.slots[slot] = Some(LineEntry {
            line,
            last_use: self.tick,
            shared: 0,
            registered: 0,
        });
        evicted
    }

    fn entry_mut(&mut self, line: u64) -> &mut LineEntry {
        let i = self.find(line).expect("line made resident");
        self.slots[i].as_mut().expect("occupied")
    }

    /// Clears one word everywhere (registration revoked remotely).
    fn drop_word(&mut self, line: u64, bit: u32) {
        if let Some(i) = self.find(line) {
            let e = self.slots[i].as_mut().expect("occupied");
            e.shared &= !bit;
            e.registered &= !bit;
        }
    }

    /// DeNovo self-invalidation: Shared words drop, Registered stay.
    fn self_invalidate(&mut self) {
        for e in self.slots.iter_mut().flatten() {
            e.shared = 0;
        }
    }
}

/// DeNovo state of one physical stash word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WState {
    Invalid,
    Shared,
    Registered,
}

/// One stash-map ring entry: a tile mapped at a physical base, plus the
/// §4.5 `reuse_of` back pointer captured at `AddMap` time. The entry
/// turns invalid when its last dirty chunk is adopted or reclaimed
/// (`#DirtyData` reaching zero, §4.2) — invalid entries no longer serve
/// as reuse targets, which is what lets an adoption *chain* form: each
/// kernel's mapping adopts from (and invalidates) the previous one.
#[derive(Debug, Clone, Copy)]
struct PhysEntry {
    id: u32,
    tile: TileMap,
    base: usize,
    reuse_of: Option<u32>,
    dirty_chunks: u32,
    valid: bool,
}

/// Per-chunk bookkeeping: owning map entry and a dirty (registered data)
/// flag feeding the owner's `#DirtyData` count.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkMeta {
    owner: Option<u32>,
    dirty: bool,
}

/// Per-CU *physical* stash model, mirroring the real stash's placement
/// semantics: per-word DeNovo state, per-chunk map-entry ownership, and a
/// FIFO map ring of `ring_cap` entries. Data survives a remap only via
/// the §4.5 reuse path — a chunk touched under a new entry is reclaimed
/// unless the new entry is a *same mapping* of the chunk's owner at the
/// same base (adoption) or a replica of it elsewhere (replica hit).
#[derive(Debug)]
struct StashModel {
    word_state: Vec<WState>,
    /// Global word each non-Invalid physical word holds.
    word_global: Vec<u64>,
    chunks: Vec<ChunkMeta>,
    ring: VecDeque<PhysEntry>,
    /// global word -> physical word, for registered words only (external
    /// revocation lookup).
    registered: HashMap<u64, usize>,
    chunk_words: usize,
    ring_cap: usize,
    next_id: u32,
}

impl StashModel {
    fn new(sys: &SystemConfig) -> Self {
        let words = sys.scratchpad_bytes / WORD_BYTES as usize;
        let chunk_words = (sys.stash_chunk_bytes / WORD_BYTES as usize).max(1);
        Self {
            word_state: vec![WState::Invalid; words],
            word_global: vec![0; words],
            chunks: vec![ChunkMeta::default(); words.div_ceil(chunk_words)],
            ring: VecDeque::new(),
            registered: HashMap::new(),
            chunk_words,
            ring_cap: sys.stash_map_entries.max(1),
            next_id: 0,
        }
    }

    fn entry(&self, id: u32) -> Option<&PhysEntry> {
        self.ring.iter().find(|e| e.id == id)
    }

    fn entry_mut(&mut self, id: u32) -> Option<&mut PhysEntry> {
        self.ring.iter_mut().find(|e| e.id == id)
    }

    /// One dirty chunk fewer for `id`; reaching zero invalidates it.
    fn decrement_dirty(&mut self, id: u32) {
        if let Some(e) = self.entry_mut(id) {
            e.dirty_chunks = e.dirty_chunks.saturating_sub(1);
            if e.dirty_chunks == 0 {
                e.valid = false;
            }
        }
    }

    /// Marks the chunk holding `phys` dirty (a store registered a word).
    fn note_store(&mut self, phys: usize) {
        let c = phys / self.chunk_words;
        if !self.chunks[c].dirty {
            self.chunks[c].dirty = true;
            if let Some(o) = self.chunks[c].owner {
                if let Some(e) = self.entry_mut(o) {
                    e.dirty_chunks += 1;
                }
            }
        }
    }

    /// Invalidates every word of chunk `c`, pushing released registered
    /// globals into `released` (the caller must drop their ownership).
    fn invalidate_chunk(&mut self, c: usize, released: &mut Vec<u64>) {
        let end = ((c + 1) * self.chunk_words).min(self.word_state.len());
        for w in c * self.chunk_words..end {
            if self.word_state[w] == WState::Registered {
                let g = self.word_global[w];
                self.registered.remove(&g);
                released.push(g);
            }
            self.word_state[w] = WState::Invalid;
        }
        if self.chunks[c].dirty {
            if let Some(o) = self.chunks[c].owner {
                self.decrement_dirty(o);
            }
        }
        self.chunks[c] = ChunkMeta::default();
    }

    /// Invalidates every owned chunk in the physical range (the real
    /// stash reclaims a displaced entry's chunks by range).
    fn reclaim_range(&mut self, base: usize, words: usize, released: &mut Vec<u64>) {
        if words == 0 {
            return;
        }
        let c0 = base / self.chunk_words;
        let c1 = (base + words)
            .div_ceil(self.chunk_words)
            .min(self.chunks.len());
        for c in c0..c1 {
            if self.chunks[c].owner.is_some() {
                self.invalidate_chunk(c, released);
            }
        }
    }

    /// `AddMap`: pushes a ring entry (displacing and reclaiming the
    /// oldest when full) and records the §4.5 same-mapping back pointer.
    fn add_map(&mut self, tile: TileMap, base: usize, released: &mut Vec<u64>) -> u32 {
        if self.ring.len() == self.ring_cap {
            if let Some(old) = self.ring.pop_front() {
                self.reclaim_range(old.base, old.tile.local_words() as usize, released);
            }
        }
        let reuse_of = self
            .ring
            .iter()
            .find(|e| e.valid && e.tile.same_mapping(&tile))
            .map(|e| e.id);
        let id = self.next_id;
        self.next_id += 1;
        self.ring.push_back(PhysEntry {
            id,
            tile,
            base,
            reuse_of,
            dirty_chunks: 0,
            valid: true,
        });
        id
    }

    /// `ChgMap` to a different mapping reclaims the entry's range; a
    /// same-mapping change is a mode change only (no data movement).
    fn chg_map(&mut self, id: u32, new_tile: TileMap, released: &mut Vec<u64>) {
        let Some(pos) = self.ring.iter().position(|e| e.id == id) else {
            return;
        };
        if self.ring[pos].tile.same_mapping(&new_tile) {
            return;
        }
        let (base, words) = (
            self.ring[pos].base,
            self.ring[pos].tile.local_words() as usize,
        );
        self.reclaim_range(base, words, released);
        let e = &mut self.ring[pos];
        e.tile = new_tile;
        e.reuse_of = None;
        // The entry lives on under the new tile (the reclaim zeroed its
        // dirty count; that must not invalidate it like a displacement).
        e.dirty_chunks = 0;
        e.valid = true;
    }

    /// Makes `phys`'s chunk belong to `entry`: claim if free, keep if
    /// already owned, *adopt* (data intact) when the entry is a same
    /// mapping of the owner at the same base, else reclaim.
    fn prepare_chunk(&mut self, phys: usize, entry: u32, released: &mut Vec<u64>) {
        let c = phys / self.chunk_words;
        match self.chunks[c].owner {
            None => self.chunks[c].owner = Some(entry),
            Some(o) if o == entry => {}
            Some(o) => {
                let adopt = self.entry(entry).is_some_and(|cur| {
                    cur.reuse_of == Some(o) && self.entry(o).is_some_and(|old| old.base == cur.base)
                });
                if adopt {
                    // The dirty data now belongs to the new entry.
                    if self.chunks[c].dirty {
                        self.decrement_dirty(o);
                        if let Some(e) = self.entry_mut(entry) {
                            e.dirty_chunks += 1;
                        }
                    }
                } else {
                    self.invalidate_chunk(c, released);
                }
                self.chunks[c].owner = Some(entry);
            }
        }
    }

    /// §4.5 replica path on a load miss: copy the word from the old
    /// same-mapping entry's location if its chunk survived. Returns true
    /// on a replica hit (the word becomes Shared at `phys`).
    fn replica_load(&mut self, phys: usize, entry: u32, global: u64) -> bool {
        let Some(cur) = self.entry(entry).copied() else {
            return false;
        };
        let Some(oid) = cur.reuse_of else {
            return false;
        };
        let Some(old) = self.entry(oid).copied() else {
            return false;
        };
        let from = old.base + (phys - cur.base);
        if from != phys
            && from < self.word_state.len()
            && self.chunks[from / self.chunk_words].owner == Some(oid)
            && self.word_state[from] != WState::Invalid
        {
            self.word_state[phys] = WState::Shared;
            self.word_global[phys] = global;
            true
        } else {
            false
        }
    }

    /// Kernel-boundary self-invalidation: Shared drops, Registered stays.
    fn self_invalidate(&mut self) {
        for s in &mut self.word_state {
            if *s == WState::Shared {
                *s = WState::Invalid;
            }
        }
    }
}

/// A bound stash-map slot during the replay of one thread block.
#[derive(Debug, Clone, Copy)]
struct StashBinding {
    entry: u32,
    tile: TileMap,
    base: usize,
}

/// Outcome of one modeled transaction, for the cost model.
#[derive(Debug, Clone, Copy, Default)]
struct TxOutcome {
    hit: bool,
    cold: bool,
    forwarded: bool,
}

/// Functional replay state: all agents' L1s, the CU stashes, and the
/// global registration registry.
struct Replay<'a> {
    sys: &'a SystemConfig,
    kind: MemConfigKind,
    /// Agents `0..gpu_cus` are CU L1s; `gpu_cus..` are CPU core L1s.
    l1s: Vec<L1Model>,
    stashes: Vec<StashModel>,
    /// word -> registered owner agent.
    owner: HashMap<u64, usize>,
    /// Lines touched so far: first touch pays the DRAM latency.
    seen_lines: HashSet<u64>,
    /// Calibrated mean L2 round trip ([`mean_l2_round_cycles`]), cached
    /// once per replay — it is geometry-dependent but stream-independent.
    l2_round_mean: u64,
    /// Per-[`CostTerm`] exposure accumulators, indexed like
    /// [`CostTerm::ALL`].
    terms: [u64; CostTerm::ALL.len()],
    gpu_l1_miss: u64,
    cpu_l1_miss: u64,
    stash_hit: u64,
    stash_miss: u64,
    gpu_cycles: u64,
    cpu_cycles: u64,
}

impl Replay<'_> {
    fn words_per_line(&self) -> u64 {
        self.sys.words_per_line() as u64
    }

    /// Adds `cycles` of exposure to a cost bucket.
    fn charge(&mut self, term: CostTerm, cycles: u64) {
        let i = CostTerm::ALL
            .iter()
            .position(|&t| t == term)
            .expect("ALL covers every term");
        self.terms[i] += cycles;
    }

    /// Average round-trip latency of an L2 access.
    fn l2_round(&self) -> u64 {
        self.l2_round_mean
    }

    /// Full (unhidden) latency of a load miss with the given outcome,
    /// charged to the cost buckets. Store misses are pure registrations
    /// (control round trip only).
    fn miss_latency(&mut self, write: bool, out: TxOutcome) -> u64 {
        self.charge(CostTerm::NocL2, self.l2_round());
        if write {
            return self.l2_round();
        }
        let mut lat = self.l2_round();
        if out.cold {
            lat += self.sys.dram_extra_cycles;
            self.charge(CostTerm::Dram, self.sys.dram_extra_cycles);
        }
        if out.forwarded {
            lat += self.sys.remote_base_cycles;
            self.charge(CostTerm::RemoteFwd, self.sys.remote_base_cycles);
        }
        lat
    }

    /// Revokes `word`'s registration (if held elsewhere) and hands it to
    /// `new_owner` (`None` = the LLC reclaims it, e.g. a DMA drain).
    fn revoke_word(&mut self, word: u64, new_owner: Option<usize>) {
        let wpl = self.words_per_line();
        if let Some(&holder) = self.owner.get(&word) {
            if Some(holder) == new_owner {
                return;
            }
            let (line, bit) = (word / wpl, 1u32 << (word % wpl));
            self.l1s[holder].drop_word(line, bit);
            if holder < self.sys.gpu_cus {
                if let Some(phys) = self.stashes[holder].registered.remove(&word) {
                    self.stashes[holder].word_state[phys] = WState::Invalid;
                }
            }
            self.owner.remove(&word);
        }
        if let Some(n) = new_owner {
            self.owner.insert(word, n);
        }
    }

    /// Replays one coalesced transaction (all `words` in one line)
    /// against `agent`'s L1.
    fn l1_tx(&mut self, agent: usize, write: bool, words: &[u64]) -> TxOutcome {
        let wpl = self.words_per_line();
        let line = words[0] / wpl;
        let mask = words.iter().fold(0u32, |m, &w| m | 1u32 << (w % wpl));
        if self.l1s[agent].hits(line, mask, write) {
            return TxOutcome {
                hit: true,
                ..TxOutcome::default()
            };
        }
        if agent < self.sys.gpu_cus {
            self.gpu_l1_miss += 1;
        } else {
            self.cpu_l1_miss += 1;
        }
        if let Some(ev) = self.l1s[agent].ensure(line) {
            // Displaced registered words write back and release ownership.
            for b in 0..wpl {
                let word = ev.line * wpl + b;
                if ev.registered & (1u32 << b) != 0 && self.owner.get(&word) == Some(&agent) {
                    self.owner.remove(&word);
                }
            }
        }
        let mut out = TxOutcome {
            cold: self.seen_lines.insert(line),
            ..TxOutcome::default()
        };
        if write {
            // Stores are registrations; no data fetch, so never cold.
            out.cold = false;
            for &w in words {
                out.forwarded |= matches!(self.owner.get(&w), Some(&a) if a != agent);
                self.revoke_word(w, Some(agent));
                let bit = 1u32 << (w % wpl);
                self.l1s[agent].entry_mut(line).registered |= bit;
            }
        } else {
            // Fill: requested words always arrive (forwarded when
            // registered elsewhere); bystander words only when no other
            // agent holds a registration on them.
            for b in 0..wpl {
                let word = line * wpl + b;
                let bit = 1u32 << b;
                let owned_elsewhere = matches!(self.owner.get(&word), Some(&a) if a != agent);
                if mask & bit != 0 {
                    out.forwarded |= owned_elsewhere;
                    self.l1s[agent].entry_mut(line).shared |= bit;
                } else if !owned_elsewhere {
                    self.l1s[agent].entry_mut(line).shared |= bit;
                }
            }
        }
        out
    }

    /// Drops this CU's ownership of globals a stash reclaim released.
    fn release_owned(&mut self, cu: usize, released: &[u64]) {
        for &g in released {
            if self.owner.get(&g) == Some(&cu) {
                self.owner.remove(&g);
            }
        }
    }

    /// Replays one stash warp op (deduplicated local word offsets) on
    /// `cu` under `binding`. Returns the worst per-word outcome plus the
    /// number of words that missed (they size the fetch traffic).
    fn stash_op(
        &mut self,
        cu: usize,
        write: bool,
        offsets: &[u64],
        binding: StashBinding,
    ) -> (TxOutcome, u64) {
        let wpl = self.words_per_line();
        let mut out = TxOutcome {
            hit: true,
            ..TxOutcome::default()
        };
        let mut missed = 0u64;
        for &off in offsets {
            let phys = binding.base + off as usize;
            if phys >= self.stashes[cu].word_state.len() {
                continue;
            }
            let g = binding.tile.virt_of_local_offset(off * WORD_BYTES).0 / WORD_BYTES;
            let mut released = Vec::new();
            self.stashes[cu].prepare_chunk(phys, binding.entry, &mut released);
            self.release_owned(cu, &released);
            if write {
                // The store leaves registered data: the chunk is dirty.
                self.stashes[cu].note_store(phys);
            }
            let state = self.stashes[cu].word_state[phys];
            let word_hits = if write {
                // Stores hit only Registered words (DeNovo).
                state == WState::Registered
            } else {
                state != WState::Invalid || self.stashes[cu].replica_load(phys, binding.entry, g)
            };
            if word_hits {
                continue;
            }
            out.hit = false;
            missed += 1;
            if write {
                // Registration round trip; the word becomes Registered.
                out.forwarded |= matches!(self.owner.get(&g), Some(&a) if a != cu);
                self.revoke_word(g, Some(cu));
                self.stashes[cu].word_state[phys] = WState::Registered;
                self.stashes[cu].word_global[phys] = g;
                self.stashes[cu].registered.insert(g, phys);
            } else {
                // Fetch from the LLC; the word becomes Shared.
                out.cold |= self.seen_lines.insert(g / wpl);
                out.forwarded |= matches!(self.owner.get(&g), Some(&a) if a != cu);
                self.stashes[cu].word_state[phys] = WState::Shared;
                self.stashes[cu].word_global[phys] = g;
            }
        }
        if out.hit {
            self.stash_hit += 1;
        } else {
            self.stash_miss += 1;
        }
        (out, missed)
    }

    /// Kernel boundary: GPU L1s and stashes self-invalidate (Registered
    /// words survive — the basis of cross-kernel stash reuse).
    fn end_kernel(&mut self) {
        for cu in 0..self.sys.gpu_cus {
            self.l1s[cu].self_invalidate();
            self.stashes[cu].self_invalidate();
        }
    }

    /// Replays a DMA transfer of `tile` (load = fill, store = drain) and
    /// returns its blocking latency: per-line injection occupancy plus
    /// the worst line's round trip, like the machine's pipelined engine.
    fn dma_transfer(&mut self, tile: &TileMap, store: bool) -> u64 {
        let wpl = self.words_per_line();
        // (line, words in that line), in tile order like the machine.
        let mut by_line: Vec<(u64, u64)> = Vec::new();
        for va in tile.iter_field_vaddrs() {
            for k in 0..tile.words_per_field() {
                let w = (va.0 + k * WORD_BYTES) / WORD_BYTES;
                if store {
                    // The drain makes the LLC the owner again.
                    self.revoke_word(w, None);
                }
                let line = w / wpl;
                match by_line.last_mut() {
                    Some((l, n)) if *l == line => *n += 1,
                    _ => by_line.push((line, 1)),
                }
            }
        }
        let mut issue = 0u64;
        let mut worst_lat = 0u64;
        for &(line, n) in &by_line {
            let flits = 2 + (n * WORD_BYTES).div_ceil(FLIT_BYTES);
            issue += flits.div_ceil(FLITS_PER_CYCLE);
            let mut lat = self.l2_round();
            if !store && self.seen_lines.insert(line) {
                lat += self.sys.dram_extra_cycles;
            }
            worst_lat = worst_lat.max(lat);
        }
        self.charge(CostTerm::Dma, issue + worst_lat);
        issue + worst_lat
    }

    /// Cost of one warp op on `cu`: `(issue_cycles, completion_latency)`,
    /// mirroring the machine's shared-port scheduler — issue cycles
    /// serialize on the CU's port, latency is hidden by other warps.
    fn op_cost(
        &mut self,
        cu: usize,
        op: &WarpOp,
        bindings: &HashMap<usize, StashBinding>,
    ) -> (u64, u64) {
        match op {
            WarpOp::Compute(n) => {
                self.charge(CostTerm::Issue, u64::from(*n));
                (u64::from(*n), 0)
            }
            WarpOp::GlobalMem { write, lanes } => {
                let txs = coalesce(lanes, self.sys.line_bytes as u64);
                let mut issue = txs.len().max(1) as u64;
                let mut lat = 0u64;
                for tx in &txs {
                    let words: Vec<u64> = tx.words.iter().map(|va| va.0 / WORD_BYTES).collect();
                    let out = self.l1_tx(cu, *write, &words);
                    if out.hit {
                        self.charge(CostTerm::L1Hit, self.sys.l1_hit_cycles);
                        lat = lat.max(self.sys.l1_hit_cycles);
                    } else {
                        issue += if *write {
                            STORE_MISS_OCCUPANCY
                        } else {
                            LOAD_MISS_OCCUPANCY
                        };
                        lat = lat.max(self.miss_latency(*write, out));
                    }
                }
                self.charge(CostTerm::Issue, issue);
                (issue, lat)
            }
            WarpOp::LocalMem {
                write, slot, lanes, ..
            } => {
                if !self.kind.uses_stash() {
                    // Scratchpad / cache-config local op: direct addressed.
                    self.charge(CostTerm::Issue, 1);
                    self.charge(CostTerm::L1Hit, self.sys.l1_hit_cycles);
                    return (1, self.sys.l1_hit_cycles);
                }
                let Some(b) = bindings.get(slot).copied() else {
                    // Temporary / unmapped: raw stash storage access.
                    self.charge(CostTerm::Issue, 1);
                    self.charge(CostTerm::L1Hit, self.sys.l1_hit_cycles);
                    return (1, self.sys.l1_hit_cycles);
                };
                let mut offsets: Vec<u64> = lanes
                    .iter()
                    .map(|&l| u64::from(l))
                    .filter(|&l| l < b.tile.local_words())
                    .collect();
                offsets.sort_unstable();
                offsets.dedup();
                if offsets.is_empty() {
                    self.charge(CostTerm::Issue, 1);
                    self.charge(CostTerm::L1Hit, self.sys.l1_hit_cycles);
                    return (1, self.sys.l1_hit_cycles);
                }
                let (out, missed) = self.stash_op(cu, *write, &offsets, b);
                if out.hit {
                    self.charge(CostTerm::Issue, 1);
                    self.charge(CostTerm::L1Hit, self.sys.l1_hit_cycles);
                    (1, self.sys.l1_hit_cycles)
                } else {
                    let flits = 1 + (missed * WORD_BYTES).div_ceil(FLIT_BYTES);
                    let issue = 1 + flits.div_ceil(FLITS_PER_CYCLE);
                    let lat = self.sys.stash_translation_cycles + self.miss_latency(*write, out);
                    self.charge(CostTerm::Issue, issue);
                    self.charge(CostTerm::StashXlat, self.sys.stash_translation_cycles);
                    (issue, lat)
                }
            }
        }
    }

    /// Cost of one stage of one block: `(port_cycles, chain_cycles)`.
    /// Port cycles occupy the CU's shared issue port; the chain is the
    /// slowest warp's in-order op chain (stages are barriers, so a
    /// block's critical path is the sum of its stage chains). Maps update
    /// `bindings` and the stash's map ring; they cost no port time (one
    /// instruction each, already in the instruction count).
    fn stage_cost(
        &mut self,
        cu: usize,
        stage: &gpu::program::Stage,
        bindings: &mut HashMap<usize, StashBinding>,
        alloc_bases: &[usize],
    ) -> (u64, u64) {
        let mut port = 0u64;
        for m in &stage.maps {
            if !self.kind.uses_stash() {
                continue;
            }
            let base = alloc_bases.get(m.alloc.0).copied().unwrap_or(0);
            let mut released = Vec::new();
            if let Some(b) = bindings.get_mut(&m.slot) {
                // ChgMap: same entry (and base), possibly a new tile.
                let (entry, tile) = (b.entry, m.tile);
                b.tile = tile;
                self.stashes[cu].chg_map(entry, tile, &mut released);
            } else {
                let entry = self.stashes[cu].add_map(m.tile, base, &mut released);
                bindings.insert(
                    m.slot,
                    StashBinding {
                        entry,
                        tile: m.tile,
                        base,
                    },
                );
            }
            self.release_owned(cu, &released);
        }
        for d in &stage.dmas {
            if d.load {
                port += self.dma_transfer(&d.tile, false);
            }
        }
        let mut stage_chain = 0u64;
        for warp in &stage.warps {
            let mut warp_chain = 0u64;
            for op in warp {
                let (issue, lat) = self.op_cost(cu, op, bindings);
                port += issue;
                warp_chain += issue + lat;
            }
            stage_chain = stage_chain.max(warp_chain);
        }
        for d in &stage.dmas {
            if d.store {
                port += self.dma_transfer(&d.tile, true);
            }
        }
        (port, stage_chain)
    }

    /// Replays all of one CU's blocks for a kernel, in the machine's wave
    /// structure: up to `max_blocks_per_cu` resident blocks (further
    /// limited by chunk-rounded local capacity) share the issue port; a
    /// wave ends when its slowest constraint — total port occupancy or
    /// the longest block chain — is done.
    fn cu_blocks(&mut self, cu: usize, blocks: &[&ThreadBlock]) -> u64 {
        let chunk_words = (self.sys.stash_chunk_bytes / WORD_BYTES as usize).max(1);
        let capacity_words = self.sys.scratchpad_bytes / WORD_BYTES as usize;
        let block_words = |b: &ThreadBlock| -> usize {
            b.allocs
                .iter()
                .map(|a| (a.words as usize).next_multiple_of(chunk_words))
                .sum()
        };
        let mut cycles = 0u64;
        let mut start = 0usize;
        while start < blocks.len() {
            let mut end = start;
            let mut words = 0usize;
            while end < blocks.len() && end - start < self.sys.max_blocks_per_cu.max(1) {
                let w = block_words(blocks[end]);
                if end > start && words + w > capacity_words {
                    break;
                }
                words += w;
                end += 1;
            }
            // Physical bases: the wave allocator packs chunk-rounded
            // allocations from word 0, in block then declaration order.
            let wave = &blocks[start..end];
            let mut stash_next_word = 0usize;
            let mut alloc_bases: Vec<Vec<usize>> = Vec::with_capacity(wave.len());
            for tb in wave {
                let mut bases = Vec::with_capacity(tb.allocs.len());
                for a in &tb.allocs {
                    bases.push(stash_next_word);
                    stash_next_word += (a.words as usize).next_multiple_of(chunk_words);
                }
                alloc_bases.push(bases);
            }
            // Replay the wave's stages round-robin across its blocks —
            // the machine interleaves resident blocks, so a block can
            // reuse a co-resident mapping before a later stage of another
            // block reclaims its chunks.
            let mut bindings: Vec<HashMap<usize, StashBinding>> = vec![HashMap::new(); wave.len()];
            let mut chains = vec![0u64; wave.len()];
            let mut port = 0u64;
            let max_stages = wave.iter().map(|tb| tb.stages.len()).max().unwrap_or(0);
            for s in 0..max_stages {
                for (bi, tb) in wave.iter().enumerate() {
                    let Some(stage) = tb.stages.get(s) else {
                        continue;
                    };
                    let (p, c) = self.stage_cost(cu, stage, &mut bindings[bi], &alloc_bases[bi]);
                    port += p;
                    chains[bi] += c;
                }
            }
            let chain_max = chains.iter().copied().max().unwrap_or(0);
            cycles += port.max(chain_max);
            start = end;
        }
        cycles
    }

    /// Replays one CPU phase; returns its cycle count (max over cores).
    fn cpu_phase(&mut self, per_core: &[Vec<CpuOp>]) -> u64 {
        let mut phase_cycles = 0u64;
        for (core, ops) in per_core.iter().enumerate() {
            let agent = self.sys.gpu_cus + core;
            let mut t = 0u64;
            for op in ops {
                match op {
                    CpuOp::Compute(n) => t += u64::from(*n),
                    CpuOp::Mem { write, vaddr } => {
                        let out = self.l1_tx(agent, *write, &[vaddr.0 / WORD_BYTES]);
                        t += 1 + if out.hit {
                            self.sys.l1_hit_cycles
                        } else {
                            self.miss_latency(*write, out)
                        };
                    }
                    // CPU stash ops need the machine's CPU-stash switch,
                    // which the suite never enables; charge issue only.
                    CpuOp::StashMem { .. } => t += 1,
                }
            }
            phase_cycles = phase_cycles.max(t);
        }
        self.charge(CostTerm::Cpu, phase_cycles);
        phase_cycles
    }
}

/// The exact structural counter pass (see module docs).
fn exact_counters(
    program: &Program,
    sys: &SystemConfig,
    kind: MemConfigKind,
) -> (Vec<(Counter, u64)>, u64) {
    let line_bytes = sys.line_bytes as u64;
    let (mut gpu_load, mut gpu_store, mut cpu_load, mut cpu_store) = (0u64, 0u64, 0u64, 0u64);
    let (mut scratch, mut stash_load, mut stash_store, mut stash_raw) = (0u64, 0u64, 0u64, 0u64);
    let (mut add_maps, mut chg_maps, mut dma_words, mut extra_instr) = (0u64, 0u64, 0u64, 0u64);
    for phase in &program.phases {
        match phase {
            Phase::Gpu(kernel) => {
                for tb in &kernel.blocks {
                    let mut bound: HashSet<usize> = HashSet::new();
                    for stage in &tb.stages {
                        for m in &stage.maps {
                            if bound.insert(m.slot) {
                                add_maps += 1;
                            } else {
                                chg_maps += 1;
                            }
                            extra_instr += 1;
                        }
                        for d in &stage.dmas {
                            let per_transfer = stage.warps.len().max(1) as u64;
                            if d.load {
                                dma_words += d.tile.local_words();
                                extra_instr += per_transfer;
                            }
                            if d.store {
                                dma_words += d.tile.local_words();
                                extra_instr += per_transfer;
                            }
                        }
                        for op in stage.warps.iter().flatten() {
                            match op {
                                WarpOp::GlobalMem { write, lanes } if !lanes.is_empty() => {
                                    let n = coalesce(lanes, line_bytes).len() as u64;
                                    if *write {
                                        gpu_store += n;
                                    } else {
                                        gpu_load += n;
                                    }
                                }
                                WarpOp::LocalMem { write, slot, .. } => {
                                    if kind.uses_stash() {
                                        if bound.contains(slot) {
                                            if *write {
                                                stash_store += 1;
                                            } else {
                                                stash_load += 1;
                                            }
                                        } else {
                                            stash_raw += 1;
                                        }
                                    } else if kind.uses_scratchpad() {
                                        scratch += 1;
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
            Phase::Cpu(p) => {
                for op in p.per_core.iter().flatten() {
                    if let CpuOp::Mem { write, .. } = op {
                        if *write {
                            cpu_store += 1;
                        } else {
                            cpu_load += 1;
                        }
                    }
                }
            }
        }
    }
    let mut exact = vec![
        (Counter::GpuKernels, program.kernel_count() as u64),
        (Counter::GpuL1LoadTx, gpu_load),
        (Counter::GpuL1StoreTx, gpu_store),
        (Counter::CpuL1LoadTx, cpu_load),
        (Counter::CpuL1StoreTx, cpu_store),
    ];
    if kind.uses_scratchpad() {
        exact.push((Counter::ScratchAccess, scratch));
    }
    if kind.uses_stash() {
        exact.push((Counter::StashLoadTx, stash_load));
        exact.push((Counter::StashStoreTx, stash_store));
        exact.push((Counter::StashRawAccess, stash_raw));
        exact.push((Counter::StashAddMap, add_maps));
        exact.push((Counter::StashChgMap, chg_maps));
    }
    if kind.uses_dma() {
        exact.push((Counter::DmaWords, dma_words));
    }
    let gpu_instructions = program.gpu_instruction_count() + extra_instr;
    (exact, gpu_instructions)
}

/// Predicts the simulator's behaviour for `program` lowered for `kind`
/// on the machine described by `sys`.
#[must_use]
pub fn predict(program: &Program, sys: &SystemConfig, kind: MemConfigKind) -> Prediction {
    let (exact, gpu_instructions) = exact_counters(program, sys, kind);
    let agents = sys.gpu_cus + sys.cpu_cores;
    let mut replay = Replay {
        sys,
        kind,
        l1s: (0..agents).map(|_| L1Model::new(sys)).collect(),
        stashes: (0..sys.gpu_cus).map(|_| StashModel::new(sys)).collect(),
        owner: HashMap::new(),
        seen_lines: HashSet::new(),
        l2_round_mean: mean_l2_round_cycles(sys),
        terms: [0; CostTerm::ALL.len()],
        gpu_l1_miss: 0,
        cpu_l1_miss: 0,
        stash_hit: 0,
        stash_miss: 0,
        gpu_cycles: 0,
        cpu_cycles: 0,
    };
    for phase in &program.phases {
        match phase {
            Phase::Gpu(kernel) => {
                // Blocks distribute round-robin over CUs like the machine;
                // the kernel takes as long as its slowest CU.
                let mut per_cu: Vec<Vec<&ThreadBlock>> = vec![Vec::new(); sys.gpu_cus];
                for (i, tb) in kernel.blocks.iter().enumerate() {
                    per_cu[i % sys.gpu_cus].push(tb);
                }
                let mut kernel_cycles = 0u64;
                for (cu, blocks) in per_cu.iter().enumerate() {
                    kernel_cycles = kernel_cycles.max(replay.cu_blocks(cu, blocks));
                }
                replay.gpu_cycles += kernel_cycles + sys.kernel_launch_cycles;
                replay.charge(CostTerm::Launch, sys.kernel_launch_cycles);
                replay.end_kernel();
            }
            Phase::Cpu(p) => {
                let cycles = replay.cpu_phase(&p.per_core);
                replay.cpu_cycles += cycles;
            }
        }
    }
    let modeled = if kind.uses_stash() {
        vec![
            (Counter::GpuL1Miss, replay.gpu_l1_miss),
            (Counter::CpuL1Miss, replay.cpu_l1_miss),
            (Counter::StashHit, replay.stash_hit),
            (Counter::StashMiss, replay.stash_miss),
        ]
    } else {
        vec![
            (Counter::GpuL1Miss, replay.gpu_l1_miss),
            (Counter::CpuL1Miss, replay.cpu_l1_miss),
        ]
    };
    let est_picos = sys.gpu_clock.cycles_to_picos(replay.gpu_cycles)
        + sys.cpu_clock.cycles_to_picos(replay.cpu_cycles);
    let terms = CostTerm::ALL
        .iter()
        .zip(replay.terms.iter())
        .map(|(&t, &v)| (t, v))
        .collect();
    Prediction {
        kind,
        gpu_instructions,
        exact,
        modeled,
        est_picos,
        terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::{AllocId, DmaReq, Kernel, LocalAlloc, MapReq, Stage, ThreadBlock};
    use mem::addr::VAddr;
    use stash::UsageMode;

    fn tile_32() -> TileMap {
        // 32 contiguous words starting at 0x1000.
        TileMap::new(VAddr(0x1000), 4, 4, 32, 0, 1).unwrap()
    }

    fn stash_block(write_back: bool) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 32 });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile: tile_32(),
            mode: UsageMode::MappedCoherent,
        });
        stage.warps[0] = vec![
            WarpOp::Compute(2),
            WarpOp::LocalMem {
                write: false,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..32).collect(),
            },
        ];
        if write_back {
            stage.warps[0].push(WarpOp::LocalMem {
                write: true,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..32).collect(),
            });
        }
        tb.stages.push(stage);
        tb
    }

    fn one_kernel(tb: ThreadBlock) -> Program {
        Program {
            phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] })],
        }
    }

    #[test]
    fn exact_counters_for_global_stream() {
        // One warp op, 32 contiguous lanes: two 64 B transactions.
        let mut tb = ThreadBlock::new();
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::GlobalMem {
            write: false,
            lanes: (0..32).map(|i| VAddr(0x2000 + i * 4)).collect(),
        }];
        tb.stages.push(stage);
        let p = one_kernel(tb);
        let sys = SystemConfig::default();
        let pred = predict(&p, &sys, MemConfigKind::Cache);
        assert_eq!(pred.counter(Counter::GpuL1LoadTx), Some(2));
        assert_eq!(pred.counter(Counter::GpuL1StoreTx), Some(0));
        assert_eq!(pred.counter(Counter::GpuKernels), Some(1));
        assert_eq!(pred.gpu_instructions, 1);
    }

    #[test]
    fn stash_ops_classify_by_binding() {
        let p = one_kernel(stash_block(true));
        let sys = SystemConfig::default();
        let pred = predict(&p, &sys, MemConfigKind::Stash);
        assert_eq!(pred.counter(Counter::StashLoadTx), Some(1));
        assert_eq!(pred.counter(Counter::StashStoreTx), Some(1));
        assert_eq!(pred.counter(Counter::StashAddMap), Some(1));
        assert_eq!(pred.counter(Counter::StashChgMap), Some(0));
        // 2 compute + 2 local ops + 1 map instruction.
        assert_eq!(pred.gpu_instructions, 5);
        // First-touch load misses, the store (needs registration) misses.
        assert_eq!(pred.counter(Counter::StashMiss), Some(2));
    }

    #[test]
    fn registered_stash_words_survive_kernel_boundaries() {
        // Kernel 1 writes the tile (registers it); kernel 2 re-reads it.
        let p = Program {
            phases: vec![
                Phase::Gpu(Kernel {
                    blocks: vec![stash_block(true)],
                }),
                Phase::Gpu(Kernel {
                    blocks: vec![stash_block(false)],
                }),
            ],
        };
        let sys = SystemConfig::default();
        let pred = predict(&p, &sys, MemConfigKind::Stash);
        // Kernel 1: the first-touch load misses and the store misses (a
        // Shared word still needs registration). Kernel 2's load then
        // hits on the registered words kernel 1 left behind.
        assert_eq!(pred.counter(Counter::StashHit), Some(1));
        assert_eq!(pred.counter(Counter::StashMiss), Some(2));
    }

    #[test]
    fn gpu_store_revokes_cpu_registration() {
        // CPU writes a word, GPU stores to it, CPU reads it back: the
        // read must miss (its registration was revoked).
        let w = VAddr(0x3000);
        let mut tb = ThreadBlock::new();
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::GlobalMem {
            write: true,
            lanes: vec![w],
        }];
        tb.stages.push(stage);
        let p = Program {
            phases: vec![
                Phase::Cpu(gpu::program::CpuPhase {
                    per_core: vec![vec![CpuOp::Mem {
                        write: true,
                        vaddr: w,
                    }]],
                    stash_maps: Vec::new(),
                }),
                Phase::Gpu(Kernel { blocks: vec![tb] }),
                Phase::Cpu(gpu::program::CpuPhase {
                    per_core: vec![vec![
                        CpuOp::Mem {
                            write: false,
                            vaddr: w,
                        },
                        CpuOp::Mem {
                            write: false,
                            vaddr: w,
                        },
                    ]],
                    stash_maps: Vec::new(),
                }),
            ],
        };
        let sys = SystemConfig::default();
        let pred = predict(&p, &sys, MemConfigKind::Cache);
        // CPU: 1 store miss + 1 load miss after revocation; the second
        // load hits the refilled line.
        assert_eq!(pred.counter(Counter::CpuL1Miss), Some(2));
        assert_eq!(pred.counter(Counter::CpuL1LoadTx), Some(2));
        assert_eq!(pred.counter(Counter::CpuL1StoreTx), Some(1));
    }

    #[test]
    fn dma_words_count_both_directions() {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 32 });
        let mut stage = Stage::new(2);
        stage.dmas.push(DmaReq {
            alloc: AllocId(0),
            tile: tile_32(),
            load: true,
            store: true,
        });
        stage.warps[0] = vec![WarpOp::Compute(1)];
        tb.stages.push(stage);
        let p = one_kernel(tb);
        let sys = SystemConfig::default();
        let pred = predict(&p, &sys, MemConfigKind::ScratchGD);
        assert_eq!(pred.counter(Counter::DmaWords), Some(64));
        // 1 compute + 2 warps noted per transfer direction.
        assert_eq!(pred.gpu_instructions, 5);
    }

    #[test]
    fn l1_capacity_eviction_is_modeled() {
        // Stream 1024 lines (2× L1 capacity) then re-read the first line:
        // it must have been evicted.
        let mut ops: Vec<CpuOp> = (0..1024u64)
            .map(|i| CpuOp::Mem {
                write: false,
                vaddr: VAddr(i * 64),
            })
            .collect();
        ops.push(CpuOp::Mem {
            write: false,
            vaddr: VAddr(0),
        });
        let p = Program {
            phases: vec![Phase::Cpu(gpu::program::CpuPhase {
                per_core: vec![ops],
                stash_maps: Vec::new(),
            })],
        };
        let sys = SystemConfig::default();
        let pred = predict(&p, &sys, MemConfigKind::Cache);
        assert_eq!(pred.counter(Counter::CpuL1Miss), Some(1025));
    }

    #[test]
    fn calibrated_round_trip_matches_flat_constant_at_paper_point() {
        // PR 3 charged `l2_base + 2 * hop` = 29 + 10 = 39 at the paper's
        // point; the calibrated geometric mean must reproduce it exactly
        // for both default machines (byte-identical default outputs).
        assert_eq!(mean_l2_round_cycles(&SystemConfig::default()), 39);
        assert_eq!(
            mean_l2_round_cycles(&SystemConfig::for_microbenchmarks()),
            39
        );
        assert_eq!(mean_l2_round_cycles(&SystemConfig::for_applications()), 39);
    }

    #[test]
    fn calibrated_round_trip_tracks_geometry() {
        // A bigger mesh means longer mean trips; a degenerate 1×1 mesh
        // means none; asymmetric Y-cost moves the mean.
        let base = SystemConfig::default();
        let wide = SystemConfig {
            mesh_side: 8,
            ..base.clone()
        };
        assert!(mean_l2_round_cycles(&wide) > mean_l2_round_cycles(&base));
        let single = SystemConfig {
            mesh_side: 1,
            ..base.clone()
        };
        assert_eq!(mean_l2_round_cycles(&single), base.l2_base_cycles);
        let slow_y = SystemConfig {
            hop_round_trip_cycles_y: 50,
            ..base.clone()
        };
        assert!(mean_l2_round_cycles(&slow_y) > mean_l2_round_cycles(&base));
        // Bank count redistributes homes. 8 banks cluster on the bottom
        // two rows, whose mean distance from *uniform* agents equals the
        // full mesh's (1.5+1.0 averages like 1.5+1.0+1.0+1.5) — pinned
        // as an equality. 4 banks collapse homes onto one row, which
        // does move the mean.
        let half_banks = SystemConfig {
            l2_banks: 8,
            ..base.clone()
        };
        assert_eq!(
            mean_l2_round_cycles(&half_banks),
            mean_l2_round_cycles(&base)
        );
        let row_banks = SystemConfig {
            l2_banks: 4,
            ..base.clone()
        };
        assert_ne!(
            mean_l2_round_cycles(&row_banks),
            mean_l2_round_cycles(&base)
        );
        // 32 banks fold onto the same 16 homes: identical mean.
        let many_banks = SystemConfig {
            l2_banks: 32,
            ..base.clone()
        };
        assert_eq!(
            mean_l2_round_cycles(&many_banks),
            mean_l2_round_cycles(&base)
        );
    }

    #[test]
    fn cost_terms_expose_latency_sources() {
        let p = one_kernel(stash_block(true));
        let sys = SystemConfig::default();
        let pred = predict(&p, &sys, MemConfigKind::Stash);
        assert_eq!(pred.terms.len(), CostTerm::ALL.len());
        let term = |t: CostTerm| {
            pred.terms
                .iter()
                .find(|(k, _)| *k == t)
                .map(|&(_, v)| v)
                .expect("all terms present")
        };
        // The block launches one kernel, issues warps, misses the stash
        // (translation + network round trips) and touches DRAM once.
        assert_eq!(term(CostTerm::Launch), sys.kernel_launch_cycles);
        assert!(term(CostTerm::Issue) > 0);
        assert!(term(CostTerm::NocL2) > 0);
        assert!(term(CostTerm::Dram) > 0);
        assert_eq!(
            term(CostTerm::StashXlat),
            2 * sys.stash_translation_cycles,
            "both stash misses pay translation"
        );
        assert_eq!(term(CostTerm::Cpu), 0);
    }

    #[test]
    fn est_picos_ranks_reuse_friendly_config_first() {
        // A kernel pair re-reading the same tile: stash (cross-kernel
        // registered reuse) must rank at least as fast as cache.
        let p = Program {
            phases: vec![
                Phase::Gpu(Kernel {
                    blocks: vec![stash_block(true)],
                }),
                Phase::Gpu(Kernel {
                    blocks: vec![stash_block(false)],
                }),
            ],
        };
        let sys = SystemConfig::default();
        let stash = predict(&p, &sys, MemConfigKind::Stash);
        assert!(stash.est_picos > 0);
        assert!(stash.stash_hit_ratio().is_some());
    }
}
