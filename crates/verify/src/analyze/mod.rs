//! Static access-pattern analysis and placement advice.
//!
//! The analyzer family consumes the same lowered [`Program`] IR the
//! simulator executes and produces two kinds of output:
//!
//! * **Diagnostics** ([`Note`]s, in the style of [`crate::lint`]):
//!   symbolized statements about the access pattern — poor coalescing,
//!   footprint-vs-capacity thrashing, copy loops without reuse, data
//!   written but never re-read, redundant DMA.
//! * **Predictions** ([`predict::Prediction`]s): per-configuration
//!   counter and cost estimates, from which [`analyze_workload`] derives
//!   a recommended [`MemConfigKind`] placement.
//!
//! # Prediction-vs-measurement contract
//!
//! Every prediction is checkable against a simulator [`RunReport`] with
//! [`validate_prediction`]:
//!
//! * [`Prediction::exact`] counters and the instruction count must match
//!   the simulator **exactly** — they are structural facts.
//! * [`Prediction::modeled`] counters come from a functional replay that
//!   deliberately simplifies scheduling (a wave's blocks interleave at
//!   stage granularity, not cycle by cycle), so they must agree within
//!   [`MODELED_REL_TOL_PCT`] percent (plus [`MODELED_ABS_SLACK`] events
//!   of absolute slack for small counts).
//! * The advisor's recommendation must be the measured-best
//!   configuration, or within [`TIE_THRESHOLD_PCT`] percent of it
//!   (a documented tie).
//!
//! The sub-modules are usable on their own: [`reuse`] for word-granular
//! reuse-distance and scope classification, [`coalesce`] for static
//! coalescing efficiency, [`waste`] for dead data movement, and
//! [`predict`] for counter/cost prediction.

pub mod coalesce;
pub mod predict;
pub mod reuse;
pub mod waste;

use crate::lint::Symbols;
use gpu::config::MemConfigKind;
use gpu::program::Program;
use gpu::report::RunReport;
use mem::addr::{VAddr, WORD_BYTES};
use predict::Prediction;
use sim::config::SystemConfig;
use stash::StashConfig;
use std::collections::HashMap;

/// Relative tolerance (percent of the measured value) for modeled
/// counters.
pub const MODELED_REL_TOL_PCT: u64 = 40;

/// Absolute slack (events) added to the modeled tolerance so tiny
/// counters do not fail on scheduling noise.
pub const MODELED_ABS_SLACK: u64 = 128;

/// Two configurations whose measured runtimes are within this many
/// percent of each other count as a tie for the advisor.
pub const TIE_THRESHOLD_PCT: u64 = 5;

/// Category of an analyzer diagnostic — the advisory (`SR02x`) subset of
/// the crate-wide unified [`Rule`](crate::diag::Rule) enum.
pub use crate::diag::Rule as NoteKind;

/// One analyzer diagnostic: the crate-wide unified type.
pub type Note = crate::diag::Diagnostic;

/// The full analyzer output for one workload.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Symbolized diagnostics about the access pattern.
    pub notes: Vec<Note>,
    /// One prediction per requested configuration, in input order.
    pub predictions: Vec<Prediction>,
    /// The configuration the cost model ranks fastest.
    pub recommended: MemConfigKind,
}

/// Names the array holding `word` (a global word index), or its address.
fn word_region(symbols: &Symbols, word: u64) -> String {
    match symbols.locate(word * WORD_BYTES) {
        Some((name, _)) => format!("array `{name}`"),
        None => format!("{:#x}", word * WORD_BYTES),
    }
}

fn region_of(symbols: &Symbols, va: VAddr) -> String {
    word_region(symbols, va.0 / WORD_BYTES)
}

/// Builds the symbolized diagnostics for one workload (see module docs
/// for which lowering feeds which analysis).
fn workload_notes<F: Fn(MemConfigKind) -> Program>(
    build: F,
    sys: &SystemConfig,
    kinds: &[MemConfigKind],
    symbols: &Symbols,
) -> Vec<Note> {
    let mut notes = Vec::new();
    let pick = |want: MemConfigKind| kinds.contains(&want).then(|| build(want));
    let wpl = sys.words_per_line() as u64;

    // Coalescing: judged on the all-global (cache) lowering, where every
    // access shows its raw lane addresses.
    let coalesce_program =
        pick(MemConfigKind::Cache).unwrap_or_else(|| build(*kinds.first().expect("kinds")));
    for (s, distinct) in
        coalesce::coalescing_by_region(&coalesce_program, symbols, sys.line_bytes as u64)
    {
        if s.extra_transactions() == 0 {
            continue;
        }
        let stride = match s.stride_bytes {
            Some(b) => format!("stride-{b} B"),
            None => "irregular".to_string(),
        };
        let wpt = s.words_per_transaction_x100(distinct);
        notes.push(Note {
            rule: NoteKind::PoorCoalescing,
            message: format!(
                "array `{}`: {stride} global stream, {}.{:02}/{wpl} words per transaction \
                 — {} extra transactions vs contiguous",
                s.region,
                wpt / 100,
                wpt % 100,
                s.extra_transactions()
            ),
        });
    }

    // Reuse and waste: judged on the stash lowering when available — its
    // event stream is the pure access pattern, free of copy-loop noise.
    let ref_program = pick(MemConfigKind::Stash)
        .or_else(|| pick(MemConfigKind::StashG))
        .unwrap_or_else(|| build(*kinds.first().expect("kinds")));
    let events = reuse::word_events(&ref_program);
    let summary = reuse::classify_events(&events);
    if summary.accesses > 0 {
        notes.push(Note {
            rule: NoteKind::ReuseProfile,
            message: format!(
                "{} word accesses over {} distinct words — {} intra-task, {} cross-task, \
                 {} cross-phase reuses",
                summary.accesses,
                summary.distinct_words,
                summary.intra_task,
                summary.cross_task,
                summary.cross_phase
            ),
        });
        // Footprint vs the L1: more distinct words than the cache holds
        // means the cache configuration thrashes on capacity.
        let bytes = summary.distinct_words * WORD_BYTES;
        if bytes > sys.l1_bytes as u64 {
            notes.push(Note {
                rule: NoteKind::CapacityThrash,
                message: format!(
                    "working set of {} KB exceeds the {} KB L1 — expect capacity misses \
                     in the cache configuration",
                    bytes / 1024,
                    sys.l1_bytes / 1024
                ),
            });
        }
    }
    let waste = waste::store_waste(&events);
    if !waste.unread.is_empty() {
        notes.push(Note {
            rule: NoteKind::LazyWritebackWin,
            message: format!(
                "{} words (first: {}) written but never re-read — lazy chunked \
                 writeback avoids {} eagerly written-back words",
                waste.unread.len(),
                word_region(symbols, waste.unread[0]),
                waste.unread.len()
            ),
        });
    }
    if !waste.dead.is_empty() {
        let total: u64 = waste.dead.iter().map(|&(_, n)| n).sum();
        notes.push(Note {
            rule: NoteKind::DeadStore,
            message: format!(
                "{total} stores to {} words (first: {}) overwritten before any read",
                waste.dead.len(),
                word_region(symbols, waste.dead[0].0)
            ),
        });
    }
    let temp_words = waste::write_only_temp_words(&ref_program);
    if temp_words > 0 {
        notes.push(Note {
            rule: NoteKind::DeadStore,
            message: format!(
                "{temp_words} temporary local words written but never read within their block"
            ),
        });
    }

    // Footprint vs local capacity: chunk-rounded, the granularity the
    // wave allocator hands out (shared with the stash crate).
    let stash_cfg = StashConfig {
        capacity_bytes: sys.scratchpad_bytes,
        chunk_bytes: sys.stash_chunk_bytes,
        ..StashConfig::default()
    };
    let mut worst_block_words = 0u64;
    for phase in &ref_program.phases {
        if let gpu::program::Phase::Gpu(kernel) = phase {
            for tb in &kernel.blocks {
                let words: u64 = tb
                    .allocs
                    .iter()
                    .map(|a| stash_cfg.chunk_rounded(a.words as usize) as u64)
                    .sum();
                worst_block_words = worst_block_words.max(words);
            }
        }
    }
    if worst_block_words > 0 {
        let capacity = stash_cfg.capacity_words() as u64;
        let resident = (capacity / worst_block_words.max(1)).max(1);
        if worst_block_words > capacity {
            notes.push(Note {
                rule: NoteKind::CapacityThrash,
                message: format!(
                    "a thread block's {worst_block_words} chunk-rounded local words exceed \
                     the {capacity}-word scratchpad/stash"
                ),
            });
        } else if (resident as usize) < sys.max_blocks_per_cu {
            notes.push(Note {
                rule: NoteKind::CapacityThrash,
                message: format!(
                    "local footprint of {worst_block_words} words limits residency to \
                     {resident} blocks per CU (of {})",
                    sys.max_blocks_per_cu
                ),
            });
        }
    }

    // Copy loops: judged on the explicit-copy (scratch) lowering.
    if let Some(scratch_program) = pick(MemConfigKind::Scratch) {
        // region -> (blocks, copied words)
        let mut by_region: HashMap<String, (u64, u64)> = HashMap::new();
        for site in waste::copy_sites(&scratch_program) {
            if site.no_reuse() {
                let e = by_region
                    .entry(region_of(symbols, site.global_base))
                    .or_default();
                e.0 += 1;
                e.1 += site.copied_lanes;
            }
        }
        let mut regions: Vec<_> = by_region.into_iter().collect();
        regions.sort();
        for (region, (blocks, words)) in regions {
            notes.push(Note {
                rule: NoteKind::CopyNoReuse,
                message: format!(
                    "{region}: explicit copy-in of {words} words across {blocks} blocks \
                     with no reuse — a stash mapping or DMA removes the copy loop"
                ),
            });
        }
    }

    // Redundant DMA: judged on the DMA lowering.
    if let Some(dma_program) = pick(MemConfigKind::ScratchGD) {
        let mut by_region: HashMap<String, u64> = HashMap::new();
        for w in waste::redundant_dma(&dma_program) {
            *by_region
                .entry(region_of(symbols, w.global_base))
                .or_default() += 1;
        }
        let mut regions: Vec<_> = by_region.into_iter().collect();
        regions.sort();
        for (region, count) in regions {
            notes.push(Note {
                rule: NoteKind::RedundantDma,
                message: format!(
                    "{region}: {count} DMA transfers move data the block never touches"
                ),
            });
        }
    }

    notes
}

/// Runs the full analysis for one workload: diagnostics from the
/// pattern-revealing lowerings, one [`Prediction`] per configuration in
/// `kinds`, and the cost model's recommended placement.
///
/// # Panics
///
/// Panics if `kinds` is empty.
#[must_use]
pub fn analyze_workload<F: Fn(MemConfigKind) -> Program>(
    build: F,
    sys: &SystemConfig,
    kinds: &[MemConfigKind],
    symbols: &Symbols,
) -> Analysis {
    assert!(!kinds.is_empty(), "need at least one configuration");
    let predictions: Vec<Prediction> = kinds
        .iter()
        .map(|&k| predict::predict(&build(k), sys, k))
        .collect();
    let recommended = recommend(&predictions);
    Analysis {
        notes: workload_notes(build, sys, kinds, symbols),
        predictions,
        recommended,
    }
}

/// The configuration the cost model ranks fastest (first wins ties).
///
/// # Panics
///
/// Panics if `predictions` is empty.
#[must_use]
pub fn recommend(predictions: &[Prediction]) -> MemConfigKind {
    predictions
        .iter()
        .min_by_key(|p| p.est_picos)
        .expect("at least one prediction")
        .kind
}

fn within_tolerance(predicted: u64, measured: u64) -> bool {
    let tol = (measured * MODELED_REL_TOL_PCT / 100).max(MODELED_ABS_SLACK);
    predicted.abs_diff(measured) <= tol
}

/// Checks a prediction against a simulator report, returning one message
/// per violated contract clause (empty = fully validated).
#[must_use]
pub fn validate_prediction(pred: &Prediction, report: &RunReport) -> Vec<String> {
    let mut errors = Vec::new();
    if pred.gpu_instructions != report.gpu_instructions {
        errors.push(format!(
            "{}: gpu_instructions predicted {} but measured {}",
            pred.kind, pred.gpu_instructions, report.gpu_instructions
        ));
    }
    for &(c, v) in &pred.exact {
        let m = report.counters.value(c);
        if v != m {
            errors.push(format!(
                "{}: {c:?} predicted {v} but measured {m} (exact counter)",
                pred.kind
            ));
        }
    }
    for &(c, v) in &pred.modeled {
        let m = report.counters.value(c);
        if !within_tolerance(v, m) {
            errors.push(format!(
                "{}: {c:?} predicted {v} but measured {m} \
                 (outside ±{MODELED_REL_TOL_PCT}% / ±{MODELED_ABS_SLACK})",
                pred.kind
            ));
        }
    }
    errors
}

/// Whether `recommended` is the measured-best configuration or within
/// the documented tie threshold of it.
///
/// # Panics
///
/// Panics if `measured` is empty or does not contain `recommended`.
#[must_use]
pub fn recommendation_ok(recommended: MemConfigKind, measured: &[(MemConfigKind, u64)]) -> bool {
    let best = measured
        .iter()
        .map(|&(_, t)| t)
        .min()
        .expect("at least one measurement");
    let rec = measured
        .iter()
        .find(|&&(k, _)| k == recommended)
        .map(|&(_, t)| t)
        .expect("recommended configuration was measured");
    rec * 100 <= best * (100 + TIE_THRESHOLD_PCT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::machine::Machine;

    fn implicit() -> workloads::suite::Workload {
        workloads::suite::all()
            .into_iter()
            .find(|w| w.name == "implicit")
            .expect("suite has the implicit microbenchmark")
    }

    #[test]
    fn analysis_produces_notes_and_predictions() {
        let w = implicit();
        let sys = SystemConfig::for_microbenchmarks();
        let a = analyze_workload(w.build, &sys, &MemConfigKind::FIGURE5, &Symbols::new());
        assert_eq!(a.predictions.len(), 4);
        assert!(
            MemConfigKind::FIGURE5.contains(&a.recommended),
            "recommendation {} must come from the analyzed set",
            a.recommended
        );
        assert!(!a.notes.is_empty(), "implicit's AoS stream must be flagged");
        for n in &a.notes {
            // Display forms are the lint style: "[kind] message".
            assert!(n.to_string().starts_with('['), "{n}");
        }
    }

    #[test]
    fn exact_counters_match_the_simulator() {
        let w = implicit();
        let sys = SystemConfig::for_microbenchmarks();
        for kind in MemConfigKind::FIGURE5 {
            let program = (w.build)(kind);
            let pred = predict::predict(&program, &sys, kind);
            let report = Machine::new(sys.clone(), kind)
                .run(&program)
                .expect("implicit runs clean");
            let errors: Vec<String> = validate_prediction(&pred, &report)
                .into_iter()
                .filter(|e| e.contains("exact counter") || e.contains("gpu_instructions"))
                .collect();
            assert!(errors.is_empty(), "{kind}: {errors:?}");
        }
    }

    #[test]
    fn tolerance_accepts_close_and_rejects_far() {
        assert!(within_tolerance(100, 100));
        assert!(within_tolerance(0, MODELED_ABS_SLACK));
        assert!(within_tolerance(1400, 1000));
        assert!(!within_tolerance(2000, 1000));
    }

    #[test]
    fn recommendation_tie_rule() {
        let measured = [
            (MemConfigKind::Scratch, 1000),
            (MemConfigKind::Cache, 960),
            (MemConfigKind::Stash, 950),
        ];
        assert!(recommendation_ok(MemConfigKind::Stash, &measured));
        // 960 is within 5% of 950: a documented tie.
        assert!(recommendation_ok(MemConfigKind::Cache, &measured));
        assert!(!recommendation_ok(MemConfigKind::Scratch, &measured));
    }
}
