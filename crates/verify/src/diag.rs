//! The unified diagnostic type shared by every static analysis in this
//! crate.
//!
//! The DRF linter ([`crate::lint`]), the access-pattern analyzer
//! ([`crate::analyze`]) and the dataflow framework
//! ([`crate::dataflow`]) all report findings as one [`Diagnostic`]
//! carrying a [`Rule`]. Rules have **stable codes** (`SR0xx`) and
//! **severity levels**, so machine consumers (the `lint` bin's
//! SARIF-style JSON, CI baseline diffs) can match findings across
//! revisions without parsing messages:
//!
//! * `SR00x` — the PR 2 syntactic lint rules (errors);
//! * `SR01x` — dataflow verdicts: proven violations are errors,
//!   data-dependent *unknowns* are warnings (the honest third state the
//!   abstract interpretation adds — neither proven safe nor proven
//!   broken);
//! * `SR02x` — advisory access-pattern notes (informational);
//! * `SR03x` — design-space exploration audit findings
//!   ([`crate::dse`]): the simulator contradicting the surrogate's
//!   ranking is a cost-model bug worth a stable code.

use std::fmt;

/// How severe a finding is — drives exit codes and SARIF levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: an optimization opportunity or profile datum.
    Note,
    /// A possible problem the analysis cannot decide (data-dependent
    /// indices); fatal only under `--deny-unknown`.
    Warning,
    /// A proven violation (race, out-of-bounds); always fatal.
    Error,
}

impl Severity {
    /// SARIF-style level string.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Which rule a diagnostic comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Conflicting accesses from two thread blocks of one kernel.
    CrossBlockRace,
    /// Conflicting accesses from two cores of one CPU phase.
    CpuRace,
    /// A CPU core re-reads a word another agent overwrote while the
    /// core still held it Shared (CPUs never self-invalidate).
    CpuStaleRead,
    /// An index expression escapes its allocation, mapping, or array.
    OutOfBounds,
    /// Dataflow proved an access is out of bounds on every execution.
    ProvenOob,
    /// Dataflow could not bound a data-dependent index expression —
    /// neither proven safe nor proven out of bounds.
    DataDependentBounds,
    /// Dataflow proved two thread blocks (or CPU cores) conflict, with
    /// a witness word range.
    ProvenRace,
    /// Data-dependent footprints *may* overlap — a race the analysis
    /// can neither prove nor refute.
    DataDependentRace,
    /// A strided global stream wasting transaction capacity.
    PoorCoalescing,
    /// A footprint that limits residency or exceeds a capacity.
    CapacityThrash,
    /// Data written but never re-read — lazy writeback wins.
    LazyWritebackWin,
    /// A word overwritten with no intervening read.
    DeadStore,
    /// An explicit copy loop whose data the body does not reuse.
    CopyNoReuse,
    /// A DMA transfer whose data the block never touches.
    RedundantDma,
    /// Informational reuse-scope profile of the access stream.
    ReuseProfile,
    /// The simulator measured the opposite order of two design points
    /// the surrogate ranked — a cost-model misrank found by the DSE
    /// audit loop, symbolized with the responsible cost term.
    SurrogateMisrank,
}

impl Rule {
    /// Every rule, in code order (stable; used to emit SARIF rule
    /// tables without enumerating variants at each call site).
    pub const ALL: [Rule; 16] = [
        Rule::CrossBlockRace,
        Rule::CpuRace,
        Rule::CpuStaleRead,
        Rule::OutOfBounds,
        Rule::ProvenOob,
        Rule::DataDependentBounds,
        Rule::ProvenRace,
        Rule::DataDependentRace,
        Rule::PoorCoalescing,
        Rule::CapacityThrash,
        Rule::LazyWritebackWin,
        Rule::DeadStore,
        Rule::CopyNoReuse,
        Rule::RedundantDma,
        Rule::ReuseProfile,
        Rule::SurrogateMisrank,
    ];

    /// Stable display name (kebab-case).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::CrossBlockRace => "cross-block-race",
            Rule::CpuRace => "cpu-race",
            Rule::CpuStaleRead => "cpu-stale-read",
            Rule::OutOfBounds => "out-of-bounds",
            Rule::ProvenOob => "proven-oob",
            Rule::DataDependentBounds => "data-dependent-bounds",
            Rule::ProvenRace => "proven-race",
            Rule::DataDependentRace => "data-dependent-race",
            Rule::PoorCoalescing => "poor-coalescing",
            Rule::CapacityThrash => "capacity-thrash",
            Rule::LazyWritebackWin => "lazy-writeback-win",
            Rule::DeadStore => "dead-store",
            Rule::CopyNoReuse => "copy-no-reuse",
            Rule::RedundantDma => "redundant-dma",
            Rule::ReuseProfile => "reuse-profile",
            Rule::SurrogateMisrank => "surrogate-misrank",
        }
    }

    /// Stable rule code — never renumbered, only appended to.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Rule::CrossBlockRace => "SR001",
            Rule::CpuRace => "SR002",
            Rule::CpuStaleRead => "SR003",
            Rule::OutOfBounds => "SR004",
            Rule::ProvenOob => "SR010",
            Rule::DataDependentBounds => "SR011",
            Rule::ProvenRace => "SR012",
            Rule::DataDependentRace => "SR013",
            Rule::PoorCoalescing => "SR020",
            Rule::CapacityThrash => "SR021",
            Rule::LazyWritebackWin => "SR022",
            Rule::DeadStore => "SR023",
            Rule::CopyNoReuse => "SR024",
            Rule::RedundantDma => "SR025",
            Rule::ReuseProfile => "SR026",
            Rule::SurrogateMisrank => "SR030",
        }
    }

    /// The rule's severity level.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::CrossBlockRace
            | Rule::CpuRace
            | Rule::CpuStaleRead
            | Rule::OutOfBounds
            | Rule::ProvenOob
            | Rule::ProvenRace => Severity::Error,
            Rule::DataDependentBounds | Rule::DataDependentRace | Rule::SurrogateMisrank => {
                Severity::Warning
            }
            Rule::PoorCoalescing
            | Rule::CapacityThrash
            | Rule::LazyWritebackWin
            | Rule::DeadStore
            | Rule::CopyNoReuse
            | Rule::RedundantDma
            | Rule::ReuseProfile => Severity::Note,
        }
    }
}

/// One finding from any of the crate's static analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated (or advisory) rule.
    pub rule: Rule,
    /// Full human-readable message: array, word range, tasks involved.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(rule: Rule, message: impl Into<String>) -> Self {
        Self {
            rule,
            message: message.into(),
        }
    }

    /// The finding's severity — a fixed property of its rule.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule.name(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for r in Rule::ALL {
            assert!(seen.insert(r.code()), "duplicate code {}", r.code());
            assert!(r.code().starts_with("SR"));
            assert!(!r.name().is_empty());
        }
        // Pin a few codes: these are the stable external interface.
        assert_eq!(Rule::CrossBlockRace.code(), "SR001");
        assert_eq!(Rule::ProvenOob.code(), "SR010");
        assert_eq!(Rule::PoorCoalescing.code(), "SR020");
        assert_eq!(Rule::SurrogateMisrank.code(), "SR030");
    }

    #[test]
    fn severities_follow_rule_class() {
        assert_eq!(Rule::ProvenOob.severity(), Severity::Error);
        assert_eq!(Rule::DataDependentBounds.severity(), Severity::Warning);
        assert_eq!(Rule::ReuseProfile.severity(), Severity::Note);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn display_includes_rule_name() {
        let d = Diagnostic::new(Rule::OutOfBounds, "lane 99 past the end");
        assert_eq!(d.to_string(), "[out-of-bounds] lane 99 past the end");
    }
}
