//! Surrogate-driven design-space exploration (DSE).
//!
//! The stash paper evaluates one hardware point; this module turns the
//! static predictor ([`crate::analyze::predict`]) into a *surrogate
//! model* that sweeps thousands of [`DesignPoint`]s no simulation ever
//! has to touch, in the Rhea fast-design-and-validate style:
//!
//! 1. A [`Space`] enumerates the cartesian design space (mesh geometry,
//!    NoC latencies, LLC banking/interleave, stash-map size, latency
//!    and energy constants). Dimensions the cost model is **provably
//!    monotone** in — pure latency/energy constants that feed cost
//!    accumulation but never change a replay decision — can be pruned
//!    to their fastest value without evaluating a single point
//!    ([`Space::prune_provably_monotone`]).
//! 2. [`evaluate_space`] runs the surrogate over every remaining point
//!    and ranks them by predicted runtime (ties broken by enumeration
//!    index, so the ranking is total and deterministic).
//! 3. The `dse` bin simulator-validates the top-k plus a seeded random
//!    audit sample, and [`audit`] compares the two orders: a
//!    [`Kendall tau`](kendall_tau) rank correlation plus one
//!    [`Misrank`] per inversion, each symbolized with the cost-model
//!    term ([`CostTerm`]) that most separates the disputed pair — so a
//!    misrank is not a shrug but an `SR030` static-analysis bug report
//!    against a specific constant.
//!
//! The surrogate contract extends [`crate::analyze`]'s: exact counters
//! stay exact at *every* design point (they are structural), modeled
//! counters keep their documented tolerances, and the ranking is
//! audited rather than assumed.

use crate::analyze::predict::{self, CostTerm, Prediction};
use crate::diag::{Diagnostic, Rule};
use gpu::config::MemConfigKind;
use gpu::program::Program;
use sim::config::SystemConfig;
use sim::rng::SplitMix64;

pub use sim::config::DesignPoint;

/// One dimension of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Mesh side length.
    MeshSide,
    /// X-dimension hop round-trip cycles.
    HopX,
    /// Y-dimension hop round-trip cycles.
    HopY,
    /// LLC bank count.
    L2Banks,
    /// LLC interleave granularity (lines per bank step).
    L2Interleave,
    /// Stash map-table entries per CU.
    StashMapEntries,
    /// Base LLC access latency.
    L2Base,
    /// Extra DRAM latency.
    DramExtra,
    /// Remote-forward base latency.
    RemoteBase,
    /// Stash translation latency.
    StashXlat,
    /// Energy-constant scale (percent).
    EnergyScale,
}

impl Dim {
    /// Every dimension, in [`DesignPoint`] field order.
    pub const ALL: [Dim; 11] = [
        Dim::MeshSide,
        Dim::HopX,
        Dim::HopY,
        Dim::L2Banks,
        Dim::L2Interleave,
        Dim::StashMapEntries,
        Dim::L2Base,
        Dim::DramExtra,
        Dim::RemoteBase,
        Dim::StashXlat,
        Dim::EnergyScale,
    ];

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dim::MeshSide => "mesh-side",
            Dim::HopX => "hop-x",
            Dim::HopY => "hop-y",
            Dim::L2Banks => "l2-banks",
            Dim::L2Interleave => "l2-interleave",
            Dim::StashMapEntries => "stash-map-entries",
            Dim::L2Base => "l2-base",
            Dim::DramExtra => "dram-extra",
            Dim::RemoteBase => "remote-base",
            Dim::StashXlat => "stash-xlat",
            Dim::EnergyScale => "energy-scale",
        }
    }

    /// Whether the predicted *runtime* is provably monotone
    /// non-decreasing in this dimension: the knob is a pure latency (or
    /// energy) constant that feeds cost accumulation and never changes
    /// a functional-replay decision (hit/miss, ownership, placement).
    /// The sweep may therefore pin such a dimension to its smallest
    /// value without evaluating the rest. `EnergyScale` is stronger
    /// still — runtime-*flat* (it scales energy only).
    #[must_use]
    pub fn provably_monotone(self) -> bool {
        matches!(
            self,
            Dim::HopX
                | Dim::HopY
                | Dim::L2Base
                | Dim::DramExtra
                | Dim::RemoteBase
                | Dim::StashXlat
                | Dim::EnergyScale
        )
    }
}

/// How the surrogate's estimate responds to stepping one dimension,
/// holding the others at the base point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sensitivity {
    /// Monotone by construction — no evaluation needed (see
    /// [`Dim::provably_monotone`]).
    ProvablyMonotone,
    /// Evaluated: the estimate never changed across the axis values.
    Flat,
    /// Evaluated: the estimate only ever moved one way along the axis.
    Monotone {
        /// Largest single-step delta in picoseconds (signed).
        worst_step: i64,
    },
    /// Evaluated: the estimate moved both ways — this dimension
    /// genuinely interacts with the replay and must be swept.
    NonMonotone {
        /// Largest upward single step (picoseconds).
        max_up: i64,
        /// Largest downward single step (picoseconds).
        max_down: i64,
    },
}

/// A cartesian design space: the cross product of per-dimension value
/// axes. Point `i` decodes mixed-radix in [`Dim::ALL`] order (mesh side
/// varies slowest), so indices are stable identifiers for a given
/// space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Space {
    /// Mesh side values.
    pub mesh_side: Vec<usize>,
    /// X hop-cost values.
    pub hop_x: Vec<u64>,
    /// Y hop-cost values.
    pub hop_y: Vec<u64>,
    /// LLC bank-count values.
    pub l2_banks: Vec<usize>,
    /// Interleave-granularity values.
    pub l2_interleave: Vec<u64>,
    /// Stash map-entry values.
    pub stash_map_entries: Vec<usize>,
    /// Base L2 latency values.
    pub l2_base: Vec<u64>,
    /// DRAM extra-latency values.
    pub dram_extra: Vec<u64>,
    /// Remote-forward latency values.
    pub remote_base: Vec<u64>,
    /// Stash-translation latency values.
    pub stash_xlat: Vec<u64>,
    /// Energy-scale values.
    pub energy_scale: Vec<u64>,
}

impl Space {
    /// The default exploration space: 2,592 points spanning mesh
    /// geometry, asymmetric NoC latency, LLC banking and interleave,
    /// stash-map capacity, and L2 service latency around the paper's
    /// point (which is itself a member).
    #[must_use]
    pub fn default_space() -> Self {
        Self {
            mesh_side: vec![2, 3, 4, 5, 6, 8],
            hop_x: vec![3, 5, 8],
            hop_y: vec![5, 8],
            l2_banks: vec![4, 8, 16, 32],
            l2_interleave: vec![1, 4],
            stash_map_entries: vec![16, 64, 128],
            l2_base: vec![20, 29, 44],
            dram_extra: vec![168],
            remote_base: vec![35],
            stash_xlat: vec![10],
            energy_scale: vec![100],
        }
    }

    /// A CI-sized space: 288 points, still spanning every geometric
    /// dimension (the paper's point included).
    #[must_use]
    pub fn smoke_space() -> Self {
        Self {
            mesh_side: vec![2, 4, 6, 8],
            hop_x: vec![3, 5, 8],
            hop_y: vec![5],
            l2_banks: vec![8, 16, 32],
            l2_interleave: vec![1, 4],
            stash_map_entries: vec![16, 64],
            l2_base: vec![29, 44],
            dram_extra: vec![168],
            remote_base: vec![35],
            stash_xlat: vec![10],
            energy_scale: vec![100],
        }
    }

    fn radices(&self) -> [usize; 11] {
        [
            self.mesh_side.len(),
            self.hop_x.len(),
            self.hop_y.len(),
            self.l2_banks.len(),
            self.l2_interleave.len(),
            self.stash_map_entries.len(),
            self.l2_base.len(),
            self.dram_extra.len(),
            self.remote_base.len(),
            self.stash_xlat.len(),
            self.energy_scale.len(),
        ]
    }

    /// Number of points in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.radices().iter().product()
    }

    /// Whether any axis is empty (an empty space has no points).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes point `index` (mixed-radix, [`Dim::ALL`] order, mesh
    /// side slowest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn point(&self, index: usize) -> DesignPoint {
        assert!(index < self.len(), "point {index} outside space");
        let radices = self.radices();
        let mut digits = [0usize; 11];
        let mut rest = index;
        for (d, &r) in digits.iter_mut().zip(radices.iter()).rev() {
            *d = rest % r;
            rest /= r;
        }
        DesignPoint {
            mesh_side: self.mesh_side[digits[0]],
            hop_x_cycles: self.hop_x[digits[1]],
            hop_y_cycles: self.hop_y[digits[2]],
            l2_banks: self.l2_banks[digits[3]],
            l2_interleave_lines: self.l2_interleave[digits[4]],
            stash_map_entries: self.stash_map_entries[digits[5]],
            l2_base_cycles: self.l2_base[digits[6]],
            dram_extra_cycles: self.dram_extra[digits[7]],
            remote_base_cycles: self.remote_base[digits[8]],
            stash_translation_cycles: self.stash_xlat[digits[9]],
            energy_scale_pct: self.energy_scale[digits[10]],
        }
    }

    /// All points in index order.
    #[must_use]
    pub fn points(&self) -> Vec<DesignPoint> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }

    /// Pins every provably-monotone dimension ([`Dim::provably_monotone`])
    /// to its smallest value and returns how many points that removed
    /// from the sweep — ranking among the surviving points is provably
    /// unchanged, because those knobs only add latency uniformly per
    /// charge without altering any replay decision.
    pub fn prune_provably_monotone(&mut self) -> usize {
        let before = self.len();
        for axis in [
            &mut self.hop_x,
            &mut self.hop_y,
            &mut self.l2_base,
            &mut self.dram_extra,
            &mut self.remote_base,
            &mut self.stash_xlat,
            &mut self.energy_scale,
        ] {
            if let Some(&min) = axis.iter().min() {
                *axis = vec![min];
            }
        }
        before - self.len()
    }
}

/// One surrogate-evaluated design point.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The point's index in its [`Space`] (stable identifier).
    pub index: usize,
    /// The decoded point.
    pub point: DesignPoint,
    /// Surrogate-predicted runtime in picoseconds.
    pub est_picos: u64,
    /// The full prediction (exact counters, cost-term exposures).
    pub prediction: Prediction,
}

/// Runs the surrogate over every point of `space` for `program` lowered
/// for `kind`, returning evaluations **ranked fastest-first** (ties
/// broken by point index, so the order is total and deterministic).
#[must_use]
pub fn evaluate_space(
    program: &Program,
    base: &SystemConfig,
    kind: MemConfigKind,
    space: &Space,
) -> Vec<Evaluated> {
    let mut evals: Vec<Evaluated> = (0..space.len())
        .map(|index| {
            let point = space.point(index);
            let sys = point.apply(base);
            let prediction = predict::predict(program, &sys, kind);
            Evaluated {
                index,
                point,
                est_picos: prediction.est_picos,
                prediction,
            }
        })
        .collect();
    evals.sort_by_key(|e| (e.est_picos, e.index));
    evals
}

/// Classifies the surrogate's response to each dimension of `space`
/// around `base`: provably monotone axes are labelled without any
/// evaluation; the rest get one prediction per axis value (all other
/// dimensions held at the base point).
#[must_use]
pub fn sensitivities(
    program: &Program,
    base: &SystemConfig,
    kind: MemConfigKind,
    space: &Space,
) -> Vec<(Dim, Sensitivity)> {
    let base_point = DesignPoint {
        mesh_side: base.mesh_side,
        hop_x_cycles: base.hop_round_trip_cycles,
        hop_y_cycles: base.hop_round_trip_cycles_y,
        l2_banks: base.l2_banks,
        l2_interleave_lines: base.l2_interleave_lines,
        stash_map_entries: base.stash_map_entries,
        l2_base_cycles: base.l2_base_cycles,
        dram_extra_cycles: base.dram_extra_cycles,
        remote_base_cycles: base.remote_base_cycles,
        stash_translation_cycles: base.stash_translation_cycles,
        energy_scale_pct: base.energy_scale_pct,
    };
    Dim::ALL
        .iter()
        .map(|&dim| {
            if dim.provably_monotone() {
                return (dim, Sensitivity::ProvablyMonotone);
            }
            let axis: Vec<DesignPoint> = match dim {
                Dim::MeshSide => space
                    .mesh_side
                    .iter()
                    .map(|&v| DesignPoint {
                        mesh_side: v,
                        ..base_point
                    })
                    .collect(),
                Dim::L2Banks => space
                    .l2_banks
                    .iter()
                    .map(|&v| DesignPoint {
                        l2_banks: v,
                        ..base_point
                    })
                    .collect(),
                Dim::L2Interleave => space
                    .l2_interleave
                    .iter()
                    .map(|&v| DesignPoint {
                        l2_interleave_lines: v,
                        ..base_point
                    })
                    .collect(),
                Dim::StashMapEntries => space
                    .stash_map_entries
                    .iter()
                    .map(|&v| DesignPoint {
                        stash_map_entries: v,
                        ..base_point
                    })
                    .collect(),
                _ => unreachable!("latency/energy dims are provably monotone"),
            };
            let ests: Vec<i64> = axis
                .iter()
                .map(|p| {
                    #[allow(clippy::cast_possible_wrap)]
                    let e = predict::predict(program, &p.apply(base), kind).est_picos as i64;
                    e
                })
                .collect();
            let steps: Vec<i64> = ests.windows(2).map(|w| w[1] - w[0]).collect();
            let max_up = steps.iter().copied().max().unwrap_or(0).max(0);
            let max_down = steps.iter().copied().min().unwrap_or(0).min(0);
            let s = if max_up == 0 && max_down == 0 {
                Sensitivity::Flat
            } else if max_up == 0 || max_down == 0 {
                Sensitivity::Monotone {
                    worst_step: if max_up != 0 { max_up } else { max_down },
                }
            } else {
                Sensitivity::NonMonotone { max_up, max_down }
            };
            (dim, s)
        })
        .collect()
}

/// Picks which ranked points the simulator should validate: the top
/// `top_k` plus `audit_n` seeded-random distinct picks from the rest.
/// Returns indices **into the ranked slice**, sorted ascending.
#[must_use]
pub fn validation_sample(ranked: usize, top_k: usize, audit_n: usize, seed: u64) -> Vec<usize> {
    let top = top_k.min(ranked);
    let mut picked: Vec<usize> = (0..top).collect();
    let rest = ranked - top;
    let audit = audit_n.min(rest);
    let mut rng = SplitMix64::new(seed);
    let mut pool: Vec<usize> = (top..ranked).collect();
    for _ in 0..audit {
        let i = rng.next_below(pool.len() as u64) as usize;
        picked.push(pool.swap_remove(i));
    }
    picked.sort_unstable();
    picked
}

/// One validated point: surrogate estimate vs simulator measurement.
#[derive(Debug, Clone)]
pub struct Validated {
    /// Rank in the surrogate's order (0 = predicted fastest).
    pub surrogate_rank: usize,
    /// The point's space index.
    pub index: usize,
    /// The decoded point.
    pub point: DesignPoint,
    /// Surrogate estimate (picoseconds).
    pub est_picos: u64,
    /// Simulator measurement (picoseconds).
    pub measured_picos: u64,
    /// The surrogate's cost-term exposures at this point.
    pub terms: Vec<(CostTerm, u64)>,
}

/// One rank inversion: the surrogate ordered `fast` before `slow`, the
/// simulator measured the opposite (beyond the tie threshold).
#[derive(Debug, Clone)]
pub struct Misrank {
    /// The point the surrogate (wrongly) ranked faster.
    pub fast: Validated,
    /// The point the simulator proved faster.
    pub slow: Validated,
    /// The cost term with the largest exposure gap between the two —
    /// the model constant to suspect.
    pub term: CostTerm,
    /// That largest absolute exposure gap, in cycles.
    pub term_gap: u64,
}

impl Misrank {
    /// The symbolized `SR030` diagnostic for this inversion.
    #[must_use]
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic::new(
            Rule::SurrogateMisrank,
            format!(
                "surrogate rank #{} ({}, est {} ps) measured slower than rank #{} \
                 ({}, est {} ps): {} vs {} ps — suspect cost term `{}` (exposure gap {} cycles)",
                self.fast.surrogate_rank,
                self.fast.point.label(),
                self.fast.est_picos,
                self.slow.surrogate_rank,
                self.slow.point.label(),
                self.slow.est_picos,
                self.fast.measured_picos,
                self.slow.measured_picos,
                self.term.name(),
                self.term_gap
            ),
        )
    }
}

/// The audit verdict over the validated sample.
#[derive(Debug, Clone)]
pub struct Audit {
    /// Kendall tau-a rank correlation × 1000 (1000 = perfect agreement).
    pub kendall_tau_x1000: i64,
    /// Every inversion beyond the tie threshold, worst (largest
    /// measured-time gap) first.
    pub misranks: Vec<Misrank>,
    /// Whether the surrogate's top-1 among the validated sample is also
    /// the measured-best (or within the documented tie threshold).
    pub top1_ok: bool,
}

/// Kendall tau-a between surrogate and measured orderings of the
/// validated sample, ×1000. Pairs tied in either metric contribute
/// zero; an empty or single-point sample scores a vacuous 1000.
#[must_use]
pub fn kendall_tau(sample: &[Validated]) -> i64 {
    let n = sample.len();
    if n < 2 {
        return 1000;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (&sample[i], &sample[j]);
            let de = i64::from(a.est_picos < b.est_picos) - i64::from(a.est_picos > b.est_picos);
            let dm = i64::from(a.measured_picos < b.measured_picos)
                - i64::from(a.measured_picos > b.measured_picos);
            match de * dm {
                1 => concordant += 1,
                -1 => discordant += 1,
                _ => {}
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as i64;
    (concordant - discordant) * 1000 / pairs
}

/// Compares the surrogate and simulator orders over the validated
/// sample. An inversion counts as a [`Misrank`] only past
/// `tie_threshold_pct` (measured times within the threshold are
/// documented ties, same rule as the placement advisor).
#[must_use]
pub fn audit(sample: &[Validated], tie_threshold_pct: u64) -> Audit {
    let mut by_rank: Vec<&Validated> = sample.iter().collect();
    by_rank.sort_by_key(|v| v.surrogate_rank);
    let mut misranks = Vec::new();
    for i in 0..by_rank.len() {
        for j in i + 1..by_rank.len() {
            let (fast, slow) = (by_rank[i], by_rank[j]);
            // Surrogate says fast <= slow; is the measurement inverted
            // beyond a tie?
            if fast.measured_picos * 100 > slow.measured_picos * (100 + tie_threshold_pct) {
                let (term, term_gap) = responsible_term(fast, slow);
                misranks.push(Misrank {
                    fast: fast.clone(),
                    slow: slow.clone(),
                    term,
                    term_gap,
                });
            }
        }
    }
    misranks.sort_by_key(|m| {
        std::cmp::Reverse((
            m.fast.measured_picos - m.slow.measured_picos,
            m.fast.surrogate_rank,
            m.slow.surrogate_rank,
        ))
    });
    let top1_ok = by_rank.first().is_none_or(|top| {
        let best = sample
            .iter()
            .map(|v| v.measured_picos)
            .min()
            .expect("sample nonempty");
        top.measured_picos * 100 <= best * (100 + tie_threshold_pct)
    });
    Audit {
        kendall_tau_x1000: kendall_tau(sample),
        misranks,
        top1_ok,
    }
}

/// The cost term whose surrogate exposure differs most between two
/// points — the constant the misrank most plausibly hides in.
fn responsible_term(a: &Validated, b: &Validated) -> (CostTerm, u64) {
    let mut best = (CostTerm::Issue, 0u64);
    for (&(ta, va), &(tb, vb)) in a.terms.iter().zip(b.terms.iter()) {
        debug_assert_eq!(ta, tb, "terms align with CostTerm::ALL");
        let gap = va.abs_diff(vb);
        if gap > best.1 {
            best = (ta, gap);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_workload() -> workloads::suite::Workload {
        workloads::suite::all()
            .into_iter()
            .find(|w| w.name == "implicit")
            .expect("suite has implicit")
    }

    #[test]
    fn default_space_meets_scale_floor_and_contains_paper_point() {
        let space = Space::default_space();
        assert!(space.len() >= 2000, "{} points", space.len());
        let paper = DesignPoint::default();
        assert!(
            space.points().contains(&paper),
            "paper's point must be explorable"
        );
        let smoke = Space::smoke_space();
        assert!((100..2000).contains(&smoke.len()), "{}", smoke.len());
        assert!(smoke.points().contains(&paper));
    }

    #[test]
    fn point_decoding_round_trips_and_is_unique() {
        let space = Space::smoke_space();
        let pts = space.points();
        let distinct: std::collections::HashSet<_> = pts.iter().collect();
        assert_eq!(
            distinct.len(),
            pts.len(),
            "indices decode to distinct points"
        );
        assert_eq!(pts[0], space.point(0));
        assert_eq!(pts[pts.len() - 1], space.point(space.len() - 1));
    }

    #[test]
    fn pruning_monotone_dims_shrinks_the_sweep() {
        let mut space = Space::default_space();
        let before = space.len();
        let removed = space.prune_provably_monotone();
        assert_eq!(before - space.len(), removed);
        assert!(removed > 0);
        // Geometric dims survive pruning untouched.
        assert_eq!(space.mesh_side, Space::default_space().mesh_side);
        assert_eq!(space.l2_banks, Space::default_space().l2_banks);
        // Latency axes collapse to their minimum.
        assert_eq!(space.hop_x, vec![3]);
        assert_eq!(space.l2_base, vec![20]);
    }

    #[test]
    fn evaluation_ranks_deterministically_and_respects_monotone_dims() {
        let w = micro_workload();
        let sys = SystemConfig::for_microbenchmarks();
        let program = (w.build)(MemConfigKind::Stash);
        let mut space = Space::smoke_space();
        // Keep the test fast: a thin slice of the smoke space.
        space.mesh_side = vec![2, 4];
        space.l2_banks = vec![16];
        space.l2_interleave = vec![1];
        space.stash_map_entries = vec![64];
        space.l2_base = vec![29, 44];
        space.hop_x = vec![5];
        let ranked = evaluate_space(&program, &sys, MemConfigKind::Stash, &space);
        assert_eq!(ranked.len(), space.len());
        let again = evaluate_space(&program, &sys, MemConfigKind::Stash, &space);
        for (a, b) in ranked.iter().zip(again.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.est_picos, b.est_picos);
        }
        // Provable monotonicity shows up in the data: same geometry,
        // larger l2_base never ranks strictly faster.
        for e in &ranked {
            let slower = DesignPoint {
                l2_base_cycles: e.point.l2_base_cycles + 15,
                ..e.point
            };
            if let Some(s) = ranked.iter().find(|x| x.point == slower) {
                assert!(s.est_picos >= e.est_picos);
            }
        }
    }

    #[test]
    fn sensitivities_label_without_evaluating_latency_dims() {
        let w = micro_workload();
        let sys = SystemConfig::for_microbenchmarks();
        let program = (w.build)(MemConfigKind::Stash);
        let space = Space::smoke_space();
        let report = sensitivities(&program, &sys, MemConfigKind::Stash, &space);
        assert_eq!(report.len(), Dim::ALL.len());
        for (dim, s) in &report {
            if dim.provably_monotone() {
                assert_eq!(*s, Sensitivity::ProvablyMonotone, "{}", dim.name());
            } else {
                assert_ne!(*s, Sensitivity::ProvablyMonotone, "{}", dim.name());
            }
        }
        // Mesh side must not be flat: bigger meshes mean longer trips.
        let (_, mesh) = report
            .iter()
            .find(|(d, _)| *d == Dim::MeshSide)
            .expect("mesh dim present");
        assert_ne!(*mesh, Sensitivity::Flat);
    }

    #[test]
    fn validation_sample_is_seeded_and_covers_top_k() {
        let a = validation_sample(288, 12, 12, 8);
        let b = validation_sample(288, 12, 12, 8);
        assert_eq!(a, b, "same seed, same sample");
        assert_eq!(a.len(), 24);
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 24);
        for i in 0..12 {
            assert!(a.contains(&i), "top-{i} must be validated");
        }
        let c = validation_sample(288, 12, 12, 9);
        assert_ne!(a, c, "different seed, different audit picks");
        // Degenerate sizes clamp instead of panicking.
        assert_eq!(validation_sample(5, 12, 12, 1).len(), 5);
    }

    fn validated(rank: usize, est: u64, measured: u64, dram: u64) -> Validated {
        Validated {
            surrogate_rank: rank,
            index: rank,
            point: DesignPoint::default(),
            est_picos: est,
            measured_picos: measured,
            terms: CostTerm::ALL
                .iter()
                .map(|&t| (t, if t == CostTerm::Dram { dram } else { 1 }))
                .collect(),
        }
    }

    #[test]
    fn audit_finds_inversions_and_blames_the_widest_term() {
        // Ranks 0..3; rank 1 measured far slower than rank 2 → one
        // misrank, and the Dram exposure gap (900 vs 100) is blamed.
        let sample = vec![
            validated(0, 100, 100, 50),
            validated(1, 200, 900, 900),
            validated(2, 300, 300, 100),
            validated(3, 400, 950, 40),
        ];
        let a = audit(&sample, 5);
        assert!(a.top1_ok);
        assert_eq!(a.misranks.len(), 1);
        let m = &a.misranks[0];
        assert_eq!(m.fast.surrogate_rank, 1);
        assert_eq!(m.slow.surrogate_rank, 2);
        assert_eq!(m.term, CostTerm::Dram);
        assert_eq!(m.term_gap, 800);
        let d = m.diagnostic();
        assert_eq!(d.rule.code(), "SR030");
        assert!(d.message.contains("dram"), "{}", d.message);
        assert!(a.kendall_tau_x1000 < 1000);
        // A perfectly ordered sample has tau 1000 and no misranks.
        let clean = vec![
            validated(0, 100, 100, 1),
            validated(1, 200, 200, 1),
            validated(2, 300, 300, 1),
        ];
        let a = audit(&clean, 5);
        assert_eq!(a.kendall_tau_x1000, 1000);
        assert!(a.misranks.is_empty());
        assert!(a.top1_ok);
    }

    #[test]
    fn audit_tie_threshold_suppresses_noise_inversions() {
        // Measured 103 vs 100 is within the 5% documented tie.
        let sample = vec![validated(0, 100, 103, 1), validated(1, 110, 100, 1)];
        assert!(audit(&sample, 5).misranks.is_empty());
        assert!(!audit(&sample, 0).misranks.is_empty());
    }
}
