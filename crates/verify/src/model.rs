//! Exhaustive model checker for the DeNovo word protocol.
//!
//! The checker abstracts the protocol to its correctness-critical core:
//! **one word**, `N` cores (each holding a [`WordState`] plus a data
//! *version*), and the LLC registry tag for that word. Data values are
//! modelled as monotonically increasing version numbers — version `k` is
//! the value written by the `k`-th store — so the *data-value invariant*
//! ("a miss returns the value of the most recent serialized store")
//! becomes a checkable arithmetic property. From the reset state a BFS
//! drives every enabled protocol event (loads, stores, evictions,
//! self-invalidations, registry-transferring DMA stores, and the lazy /
//! stale writeback race), asserting the global invariants of §4.3–§4.4
//! in every reachable state.
//!
//! # Invariants checked
//!
//! State-level (checked in every reachable state):
//!
//! * **I1 (SWMR)** — at most one core holds the word Registered;
//! * **I2 (registry/owner agreement)** — a core is Registered **iff**
//!   the LLC tag names exactly that core;
//! * **I3 (no lost writeback)** — when the LLC tag is Valid, the LLC
//!   data is the latest written version;
//! * **I4 (owner freshness)** — when the LLC tag names an owner, that
//!   owner's copy is the latest written version.
//!
//! Transition-level (checked while applying an event):
//!
//! * **Miss freshness (data-value invariant)** — a load *miss* (which
//!   serializes at the registry) must return the latest version; only
//!   *hits* on Shared copies may legitimately observe stale data, and
//!   only until the next self-invalidation (the DRF contract).
//! * **Read monotonicity** — no core ever reads an older version than
//!   one it previously read.
//!
//! # Scope and limits
//!
//! The model is exhaustive *within its bounds*: a single word (DeNovo
//! word states are independent across words — no sharer lists, no
//! line-state interaction except the line-granularity ablation, which
//! the runtime oracle covers), 2–3 cores, and stores bounded to
//! [`MAX_VERSION`] so the state space closes. Timing, banking and the
//! network are abstracted away; transient hazards are modelled by the
//! explicit [`Event::StaleWriteback`] race event.
//!
//! # Mutation testing
//!
//! [`check`] also accepts a [`Mutation`] that deliberately breaks one
//! transition (e.g. skipping the previous owner's invalidation on a
//! registration transfer). Every mutation must yield a counterexample —
//! this proves the checker actually discriminates, and documents the
//! minimal failure trace each protocol rule prevents.

use mem::coherence::WordState;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Stores per run of the bounded model (versions `1..=MAX_VERSION`).
pub const MAX_VERSION: u8 = 3;

/// One core's view of the modelled word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CoreView {
    /// DeNovo word state in this core's L1/stash.
    state: WordState,
    /// Version held (0 = the initial memory value; normalized to 0 when
    /// Invalid so equivalent states collapse).
    version: u8,
    /// Highest version this core has ever read (read-serialization
    /// witness).
    last_read: u8,
    /// A writeback of this version is still in flight after the core's
    /// registration was revoked (the stale-writeback race, §4.4).
    pending_wb: Option<u8>,
}

impl CoreView {
    const RESET: CoreView = CoreView {
        state: WordState::Invalid,
        version: 0,
        last_read: 0,
        pending_wb: None,
    };
}

/// The registry tag of the modelled word at the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tag {
    /// The LLC's data array holds the word.
    Valid,
    /// Core `n` holds the only up-to-date copy.
    Registered(u8),
}

/// One global protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    cores: Vec<CoreView>,
    tag: Tag,
    /// Version of the copy in the LLC data array.
    llc_version: u8,
    /// Version of the most recent serialized store.
    latest: u8,
}

impl State {
    fn reset(cores: usize) -> State {
        State {
            cores: vec![CoreView::RESET; cores],
            tag: Tag::Valid,
            llc_version: 0,
            latest: 0,
        }
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.cores.iter().enumerate() {
            write!(f, "core{i}={}v{}", c.state, c.version)?;
            if let Some(v) = c.pending_wb {
                write!(f, "(wb v{v})")?;
            }
            write!(f, " ")?;
        }
        match self.tag {
            Tag::Valid => write!(f, "llc=Valid v{}", self.llc_version)?,
            Tag::Registered(c) => write!(f, "llc=Reg(core{c}) v{}", self.llc_version)?,
        }
        write!(f, " latest=v{}", self.latest)
    }
}

/// One protocol event (all core indices are model core numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Core loads the word (hit or miss as its state dictates).
    Load(usize),
    /// Core stores the word, obtaining registration from the LLC.
    Store(usize),
    /// Core's L1/stash evicts the word (writeback if Registered).
    Evict(usize),
    /// Kernel-boundary self-invalidation at one core.
    SelfInvalidate(usize),
    /// A delayed writeback from a since-revoked owner arrives at the LLC.
    StaleWriteback(usize),
    /// A DMA store writes the word through to the LLC (`store_through`).
    DmaStore,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Load(c) => write!(f, "core{c}: load"),
            Event::Store(c) => write!(f, "core{c}: store"),
            Event::Evict(c) => write!(f, "core{c}: evict"),
            Event::SelfInvalidate(c) => write!(f, "core{c}: self-invalidate"),
            Event::StaleWriteback(c) => write!(f, "core{c}: stale writeback arrives"),
            Event::DmaStore => write!(f, "dma: store-through"),
        }
    }
}

/// A deliberately broken transition, for mutation-testing the checker.
///
/// Each mutation disables one rule the real protocol relies on; `check`
/// must find a counterexample for every one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Registration transfer does not invalidate the previous owner
    /// (breaks the `invalidate_previous_owner` path).
    SkipOwnerInvalidation,
    /// Evicting a Registered word drops the data without telling the
    /// registry (breaks `evict_writeback`).
    DropEvictionWriteback,
    /// The LLC accepts writebacks without the registry owner check
    /// (breaks `writeback_word`'s stale-drop).
    AcceptStaleWriteback,
    /// Self-invalidation also drops Registered words (breaks
    /// `after_self_invalidate`'s Registered exemption).
    SelfInvalidateRegistered,
    /// A load miss on a registered word is served stale LLC data instead
    /// of being forwarded to the owner (breaks `LlcLoadOutcome::Forward`).
    ForwardStaleFromLlc,
}

impl Mutation {
    /// Every mutation, for exhaustive mutation tests.
    pub const ALL: [Mutation; 5] = [
        Mutation::SkipOwnerInvalidation,
        Mutation::DropEvictionWriteback,
        Mutation::AcceptStaleWriteback,
        Mutation::SelfInvalidateRegistered,
        Mutation::ForwardStaleFromLlc,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SkipOwnerInvalidation => "skip-owner-invalidation",
            Mutation::DropEvictionWriteback => "drop-eviction-writeback",
            Mutation::AcceptStaleWriteback => "accept-stale-writeback",
            Mutation::SelfInvalidateRegistered => "self-invalidate-registered",
            Mutation::ForwardStaleFromLlc => "forward-stale-from-llc",
        }
    }
}

/// A minimal violating run: the event trace from reset, the violated
/// invariant, and the state reached.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Events from the reset state, in order (BFS ⇒ shortest possible).
    pub trace: Vec<Event>,
    /// Which invariant failed, in human terms.
    pub violation: String,
    /// The violating state, rendered.
    pub state: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.violation)?;
        writeln!(
            f,
            "counterexample ({} events from reset):",
            self.trace.len()
        )?;
        for (i, e) in self.trace.iter().enumerate() {
            writeln!(f, "  {}. {e}", i + 1)?;
        }
        write!(f, "final state: {}", self.state)
    }
}

/// Exploration statistics of a clean run.
#[derive(Debug, Clone, Copy)]
pub struct CheckStats {
    /// Cores in the model.
    pub cores: usize,
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions taken (edges of the reachability graph).
    pub transitions: u64,
    /// Longest shortest-path depth from reset.
    pub max_depth: usize,
}

impl fmt::Display for CheckStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores: {} states, {} transitions, depth {} — all invariants hold",
            self.cores, self.states, self.transitions, self.max_depth
        )
    }
}

/// The events enabled in `s` (under `mutation`).
fn enabled(s: &State, mutation: Option<Mutation>) -> Vec<Event> {
    let mut out = Vec::new();
    for (i, c) in s.cores.iter().enumerate() {
        out.push(Event::Load(i));
        if s.latest < MAX_VERSION {
            out.push(Event::Store(i));
        }
        if c.state != WordState::Invalid {
            out.push(Event::Evict(i));
        }
        if c.state == WordState::Shared
            || (mutation == Some(Mutation::SelfInvalidateRegistered)
                && c.state == WordState::Registered)
        {
            out.push(Event::SelfInvalidate(i));
        }
        if c.pending_wb.is_some() {
            out.push(Event::StaleWriteback(i));
        }
    }
    if s.latest < MAX_VERSION {
        out.push(Event::DmaStore);
    }
    out
}

/// Applies `e` to `s`; `Err` is a transition-level invariant violation.
fn apply(s: &State, e: Event, mutation: Option<Mutation>) -> Result<State, String> {
    let mut n = s.clone();
    match e {
        Event::Load(c) => {
            let value = if n.cores[c].state.load_hits() {
                // Hit: the local copy. Shared copies may be stale — the
                // DRF contract tolerates that until self-invalidation.
                n.cores[c].version
            } else {
                // Miss: serialized at the registry; must observe latest.
                let value = match n.tag {
                    Tag::Registered(o) if mutation == Some(Mutation::ForwardStaleFromLlc) => {
                        let _ = o; // owner ignored: stale LLC data served
                        n.llc_version
                    }
                    Tag::Registered(o) => n.cores[o as usize].version,
                    Tag::Valid => n.llc_version,
                };
                n.cores[c].state = WordState::Shared;
                n.cores[c].version = value;
                if value != n.latest {
                    return Err(format!(
                        "data-value invariant: core{c} load miss returned v{value}, \
                         latest serialized store is v{}",
                        n.latest
                    ));
                }
                value
            };
            if value < n.cores[c].last_read {
                return Err(format!(
                    "read monotonicity: core{c} read v{value} after having read v{}",
                    n.cores[c].last_read
                ));
            }
            n.cores[c].last_read = value;
        }
        Event::Store(c) => {
            n.latest += 1;
            // Registration transfer: revoke the previous owner (DeNovo
            // moves only the registry entry — no data moves, the new
            // owner overwrites the whole word).
            if let Tag::Registered(o) = n.tag {
                let o = o as usize;
                if o != c && mutation != Some(Mutation::SkipOwnerInvalidation) {
                    n.cores[o].pending_wb = Some(n.cores[o].version);
                    n.cores[o].state = WordState::Invalid;
                    n.cores[o].version = 0;
                }
            }
            n.cores[c].state = WordState::Registered;
            n.cores[c].version = n.latest;
            // Re-registering supersedes any queued writeback of ours.
            n.cores[c].pending_wb = None;
            n.tag = Tag::Registered(c as u8);
        }
        Event::Evict(c) => {
            if n.cores[c].state == WordState::Registered
                && mutation != Some(Mutation::DropEvictionWriteback)
            {
                // Eviction writeback; the LLC's owner check applies.
                if n.tag == Tag::Registered(c as u8) {
                    n.llc_version = n.cores[c].version;
                    n.tag = Tag::Valid;
                }
            }
            n.cores[c].state = WordState::Invalid;
            n.cores[c].version = 0;
        }
        Event::SelfInvalidate(c) => {
            // `after_self_invalidate`: Shared drops; Registered survives —
            // unless the mutation breaks the exemption.
            n.cores[c].state = WordState::Invalid;
            n.cores[c].version = 0;
        }
        Event::StaleWriteback(c) => {
            let v = n.cores[c]
                .pending_wb
                .take()
                .expect("enabled only if pending");
            if mutation == Some(Mutation::AcceptStaleWriteback) || n.tag == Tag::Registered(c as u8)
            {
                // Accepted (the mutation skips the registry owner check;
                // the owner-match branch is unreachable in the correct
                // protocol because re-registration clears the queue).
                n.llc_version = v;
                n.tag = Tag::Valid;
            }
            // Correct protocol: owner mismatch ⇒ dropped, state unchanged.
        }
        Event::DmaStore => {
            n.latest += 1;
            if let Tag::Registered(o) = n.tag {
                if mutation != Some(Mutation::SkipOwnerInvalidation) {
                    let o = o as usize;
                    n.cores[o].state = WordState::Invalid;
                    n.cores[o].version = 0;
                }
            }
            n.tag = Tag::Valid;
            n.llc_version = n.latest;
        }
    }
    Ok(n)
}

/// The first state-level invariant `s` violates, if any.
fn violated_invariant(s: &State) -> Option<String> {
    let owners: Vec<usize> = s
        .cores
        .iter()
        .enumerate()
        .filter(|(_, c)| c.state == WordState::Registered)
        .map(|(i, _)| i)
        .collect();
    if owners.len() > 1 {
        return Some(format!(
            "I1 (SWMR): cores {owners:?} are simultaneously Registered"
        ));
    }
    match (s.tag, owners.first()) {
        (Tag::Registered(t), Some(&o)) if t as usize != o => {
            return Some(format!(
                "I2 (registry/owner agreement): registry names core{t}, core{o} is Registered"
            ));
        }
        (Tag::Registered(t), None) => {
            return Some(format!(
                "I2 (registry/owner agreement): registry names core{t}, which holds no \
                 Registered copy (data lost)"
            ));
        }
        (Tag::Valid, Some(&o)) => {
            return Some(format!(
                "I2 (registry/owner agreement): core{o} is Registered but the registry \
                 tag is Valid"
            ));
        }
        _ => {}
    }
    if s.tag == Tag::Valid && s.llc_version != s.latest {
        return Some(format!(
            "I3 (no lost writeback): registry tag Valid but LLC holds v{}, latest is v{}",
            s.llc_version, s.latest
        ));
    }
    if let Tag::Registered(o) = s.tag {
        if s.cores[o as usize].version != s.latest {
            return Some(format!(
                "I4 (owner freshness): owner core{o} holds v{}, latest is v{}",
                s.cores[o as usize].version, s.latest
            ));
        }
    }
    None
}

/// Exhaustively explores the `cores`-core model (optionally with one
/// transition deliberately broken) from reset.
///
/// # Errors
///
/// Returns the minimal counterexample if any reachable state or
/// transition violates an invariant. A correct protocol (`mutation:
/// None`) must return `Ok`; every [`Mutation`] must return `Err`.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn check(cores: usize, mutation: Option<Mutation>) -> Result<CheckStats, Box<Counterexample>> {
    assert!(cores > 0, "model needs at least one core");
    let reset = State::reset(cores);
    let mut states: Vec<State> = vec![reset.clone()];
    let mut depths: Vec<usize> = vec![0];
    let mut parents: Vec<Option<(usize, Event)>> = vec![None];
    let mut ids: HashMap<State, usize> = HashMap::from([(reset, 0)]);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut transitions = 0u64;
    let mut max_depth = 0usize;

    let trace_to = |parents: &[Option<(usize, Event)>], mut id: usize, last: Event| {
        let mut trace = vec![last];
        while let Some((p, e)) = parents[id] {
            trace.push(e);
            id = p;
        }
        trace.reverse();
        trace
    };

    while let Some(id) = queue.pop_front() {
        let depth = depths[id];
        max_depth = max_depth.max(depth);
        for e in enabled(&states[id], mutation) {
            transitions += 1;
            let next = match apply(&states[id], e, mutation) {
                Ok(n) => n,
                Err(violation) => {
                    // Render the state the violating event started from.
                    return Err(Box::new(Counterexample {
                        trace: trace_to(&parents, id, e),
                        violation,
                        state: states[id].to_string(),
                    }));
                }
            };
            if let Some(violation) = violated_invariant(&next) {
                return Err(Box::new(Counterexample {
                    trace: trace_to(&parents, id, e),
                    violation,
                    state: next.to_string(),
                }));
            }
            if !ids.contains_key(&next) {
                let nid = states.len();
                ids.insert(next.clone(), nid);
                states.push(next);
                depths.push(depth + 1);
                parents.push(Some((id, e)));
                queue.push_back(nid);
            }
        }
    }
    Ok(CheckStats {
        cores,
        states: states.len(),
        transitions,
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_core_model_is_clean_and_exhaustive() {
        let stats = check(2, None).expect("correct protocol has no violations");
        assert_eq!(stats.cores, 2);
        // The space is non-trivial but closed.
        assert!(stats.states > 100, "got {} states", stats.states);
        assert!(stats.transitions > stats.states as u64);
    }

    #[test]
    fn three_core_model_is_clean() {
        let stats = check(3, None).expect("correct protocol has no violations");
        // More cores strictly grow the reachable space.
        let two = check(2, None).unwrap();
        assert!(stats.states > two.states);
    }

    #[test]
    fn every_mutation_yields_a_counterexample() {
        for m in Mutation::ALL {
            let cex = check(2, Some(m)).expect_err(m.name());
            assert!(!cex.trace.is_empty(), "{}: empty trace", m.name());
            assert!(!cex.violation.is_empty());
            // BFS finds short traces; anything beyond a handful of events
            // would mean the model lost minimality.
            assert!(
                cex.trace.len() <= 6,
                "{}: trace of {} events not minimal",
                m.name(),
                cex.trace.len()
            );
        }
    }

    #[test]
    fn skip_owner_invalidation_breaks_swmr() {
        let cex = check(2, Some(Mutation::SkipOwnerInvalidation)).unwrap_err();
        assert!(cex.violation.contains("I1"), "{}", cex.violation);
        // Two stores from different cores suffice.
        assert_eq!(cex.trace.len(), 2);
    }

    #[test]
    fn forward_stale_breaks_data_value_invariant() {
        let cex = check(2, Some(Mutation::ForwardStaleFromLlc)).unwrap_err();
        assert!(cex.violation.contains("data-value"), "{}", cex.violation);
    }

    #[test]
    fn counterexample_displays_trace() {
        let cex = check(2, Some(Mutation::DropEvictionWriteback)).unwrap_err();
        let text = cex.to_string();
        assert!(text.contains("counterexample"));
        assert!(text.contains("1."));
    }

    #[test]
    fn stats_display_is_informative() {
        let stats = check(2, None).unwrap();
        let text = stats.to_string();
        assert!(text.contains("states"));
        assert!(text.contains("invariants hold"));
    }
}
