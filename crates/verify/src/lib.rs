//! Protocol verification layer for the stash reproduction.
//!
//! Four coordinated analyses guard the DeNovo coherence protocol the
//! timing model is built on (paper §4.3–§4.4):
//!
//! 1. [`model`] — an exhaustive **model checker** that enumerates every
//!    reachable protocol state of one word across N cores plus the LLC
//!    registry, driving loads, stores, evictions, self-invalidations,
//!    registration transfers, DMA fills, and lazy stash writebacks from
//!    reset via BFS. It asserts the global invariants (single Registered
//!    owner, registry/owner agreement, the data-value invariant via a
//!    monotonic write timestamp, no lost writebacks) and prints a minimal
//!    counterexample event trace on violation. Mutation hooks
//!    deliberately break individual transitions to prove the checker
//!    actually catches each class of bug.
//! 2. The **runtime invariant oracle** in `gpu::memsys` (enabled with
//!    `MemSystem::set_verify`, or `--verify` on the bench binaries)
//!    cross-checks the same invariants against the real L1/stash/LLC
//!    structures after every transition of a workload run. The
//!    `oracle_matrix` integration test in this crate exercises it over
//!    the full Figure 5 matrix.
//! 3. [`lint`] — a static **DRF linter** over the workload IR that flags
//!    cross-thread-block races, cross-core CPU races, CPU stale reads
//!    across unsynchronized GPU/CPU phase boundaries, and out-of-bounds
//!    stash-map / AoS index expressions, before any simulation runs.
//! 4. [`analyze`] — a static **access-pattern analyzer and placement
//!    advisor** over the same IR: word-granular reuse-distance analysis,
//!    static coalescing efficiency (via the machine's own coalescer),
//!    footprint-vs-capacity thrash prediction, waste detection (dead
//!    stores, copy loops without reuse, redundant DMA), and a
//!    per-configuration counter/cost predictor whose output is
//!    cross-validated against simulator runs.
//! 5. [`dse`] — a **surrogate-driven design-space explorer** that scales
//!    the analyzer's predictor across thousands of hardware
//!    [`DesignPoint`]s (mesh geometry, NoC latencies, LLC banking,
//!    stash-map capacity), prunes provably-monotone dimensions without
//!    evaluation, ranks the rest, and audits the ranking against real
//!    simulations — every inversion becomes a stable `SR030`
//!    diagnostic naming the suspect cost-model term.
//!
//! DeNovo's guarantees hold only for data-race-free programs, so the
//! layers complement each other: the model checker proves the protocol
//! rules sound, the oracle proves the implementation follows them on
//! real runs, the linter proves the inputs satisfy the DRF precondition
//! those proofs assume, and the analyzer predicts — and the simulator
//! confirms — what the protocol costs on each placement.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod dataflow;
pub mod diag;
pub mod dse;
pub mod lint;
pub mod model;

pub use analyze::predict::{CostTerm, Prediction};
pub use analyze::{
    analyze_workload, recommend, recommendation_ok, validate_prediction, Analysis, Note, NoteKind,
};
pub use diag::{Diagnostic, Rule, Severity};
pub use dse::{DesignPoint, Space};
pub use lint::{lint_program, Symbols};
pub use model::{check, CheckStats, Counterexample, Event, Mutation, MAX_VERSION};

use workloads::trace::TraceWorkload;

/// Builds a diagnostic symbol table from a trace workload's arrays.
pub fn symbols_for_trace(trace: &TraceWorkload) -> Symbols {
    let mut symbols = Symbols::new();
    for (name, array) in trace.arrays() {
        symbols.add(name, array.base, array.footprint_bytes());
    }
    symbols
}
