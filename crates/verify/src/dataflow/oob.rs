//! The value-range bounds pass: three-valued out-of-bounds verdicts.
//!
//! Where [`crate::lint`] reports the concrete lanes it can see, this
//! pass classifies every bounds check three ways:
//!
//! * **proven safe** — the lane interval fits inside the limit on
//!   every execution (no diagnostic; counted in the summary);
//! * **proven OOB** ([`Rule::ProvenOob`], error) — some lane exceeds
//!   the limit on every execution, because the lanes are pure
//!   functions of thread/block ids;
//! * **unknown** ([`Rule::DataDependentBounds`], warning) — the
//!   stage's indices are data-dependent ([`Stage::tainted`]); the
//!   recorded lanes are one witness, so neither verdict is provable.
//!
//! [`Stage::tainted`]: gpu::program::Stage::tainted

use crate::dataflow::domain::Interval;
use crate::diag::{Diagnostic, Rule};
use crate::lint::Symbols;
use gpu::program::{CpuOp, Phase, Program, ThreadBlock, WarpOp};
use mem::addr::WORD_BYTES;
use mem::tile::TileMap;
use std::collections::HashMap;

/// How one bounds check came out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsVerdict {
    /// In range on every execution.
    ProvenSafe,
    /// Out of range on every execution reaching the access.
    ProvenOob,
    /// Data-dependent: neither provable.
    Unknown,
}

/// Tally of every bounds check the pass classified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundsSummary {
    /// Checks proven in range.
    pub proven_safe: usize,
    /// Checks proven out of range.
    pub proven_oob: usize,
    /// Data-dependent checks.
    pub unknown: usize,
}

impl BoundsSummary {
    /// Total checks classified.
    #[must_use]
    pub fn checked(&self) -> usize {
        self.proven_safe + self.proven_oob + self.unknown
    }

    fn count(&mut self, verdict: BoundsVerdict) {
        match verdict {
            BoundsVerdict::ProvenSafe => self.proven_safe += 1,
            BoundsVerdict::ProvenOob => self.proven_oob += 1,
            BoundsVerdict::Unknown => self.unknown += 1,
        }
    }
}

/// Runs the bounds pass: diagnostics for proven-OOB (error) and
/// data-dependent (warning) checks, plus the full verdict tally.
#[must_use]
pub fn check_bounds(program: &Program, symbols: &Symbols) -> (Vec<Diagnostic>, BoundsSummary) {
    let mut out = Vec::new();
    let mut summary = BoundsSummary::default();
    let mut kernel_idx = 0usize;
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Gpu(kernel) => {
                for (b, block) in kernel.blocks.iter().enumerate() {
                    check_block(block, kernel_idx, b, symbols, &mut out, &mut summary);
                }
                kernel_idx += 1;
            }
            Phase::Cpu(cpu) => {
                check_cpu_phase(cpu, phase_idx, &mut out, &mut summary);
            }
        }
    }
    (out, summary)
}

fn check_block(
    block: &ThreadBlock,
    kernel_idx: usize,
    b: usize,
    symbols: &Symbols,
    out: &mut Vec<Diagnostic>,
    summary: &mut BoundsSummary,
) {
    let mut bindings: HashMap<usize, TileMap> = HashMap::new();
    for (si, stage) in block.stages.iter().enumerate() {
        let here = format!("kernel {kernel_idx} block {b} stage {si}");
        // One data-dependent warning per stage, not per lane.
        let mut warned_unknown = false;
        for m in &stage.maps {
            // Tile-vs-allocation and tile-vs-array geometry is static
            // regardless of taint: always decidable.
            let alloc_words = block.allocs.get(m.alloc.0).map_or(0, |a| a.words);
            if m.tile.local_words() > alloc_words {
                summary.count(BoundsVerdict::ProvenOob);
                out.push(Diagnostic::new(
                    Rule::ProvenOob,
                    format!(
                        "{here}: mapped tile needs {} local words but allocation {} holds {} \
                         — out of bounds on every execution",
                        m.tile.local_words(),
                        m.alloc.0,
                        alloc_words
                    ),
                ));
            } else {
                summary.count(BoundsVerdict::ProvenSafe);
            }
            check_tile_vs_symbols(&m.tile, &here, symbols, out, summary);
            if m.mode.is_mapped() {
                bindings.insert(m.slot, m.tile);
            }
        }
        for d in &stage.dmas {
            check_tile_vs_symbols(&d.tile, &here, symbols, out, summary);
        }
        for op in stage.warps.iter().flatten() {
            let WarpOp::LocalMem {
                alloc, slot, lanes, ..
            } = op
            else {
                continue;
            };
            if lanes.is_empty() {
                continue;
            }
            let tile = bindings.get(slot);
            let limit = tile.map_or_else(
                || block.allocs.get(alloc.0).map_or(0, |a| a.words),
                TileMap::local_words,
            );
            let target = if tile.is_some() {
                "its mapped tile"
            } else {
                "its allocation"
            };
            if stage.tainted {
                summary.count(BoundsVerdict::Unknown);
                if !warned_unknown {
                    warned_unknown = true;
                    out.push(Diagnostic::new(
                        Rule::DataDependentBounds,
                        format!(
                            "{here}: local indices are data-dependent — bounded by {target} \
                             (size {limit} words) at runtime, but not provable statically"
                        ),
                    ));
                }
                continue;
            }
            let lanes = lane_interval(lanes);
            if lanes.hi < limit {
                summary.count(BoundsVerdict::ProvenSafe);
            } else {
                summary.count(BoundsVerdict::ProvenOob);
                out.push(Diagnostic::new(
                    Rule::ProvenOob,
                    format!(
                        "{here}: local index range [{}, {}] escapes {target} \
                         (size {limit} words) on every execution",
                        lanes.lo, lanes.hi
                    ),
                ));
            }
        }
    }
}

fn check_cpu_phase(
    cpu: &gpu::program::CpuPhase,
    phase_idx: usize,
    out: &mut Vec<Diagnostic>,
    summary: &mut BoundsSummary,
) {
    for (c, ops) in cpu.per_core.iter().enumerate() {
        let maps = cpu.stash_maps.get(c);
        for op in ops {
            let CpuOp::StashMem { slot, word, .. } = op else {
                continue;
            };
            match maps.and_then(|m| m.get(*slot)) {
                None => {
                    summary.count(BoundsVerdict::ProvenOob);
                    out.push(Diagnostic::new(
                        Rule::ProvenOob,
                        format!(
                            "phase {phase_idx} core {c}: StashMem slot {slot} has no mapping \
                             — faults on every execution"
                        ),
                    ));
                }
                Some(tile) if u64::from(*word) >= tile.local_words() => {
                    summary.count(BoundsVerdict::ProvenOob);
                    out.push(Diagnostic::new(
                        Rule::ProvenOob,
                        format!(
                            "phase {phase_idx} core {c}: stash index {word} escapes its mapped \
                             tile (size {} words) on every execution",
                            tile.local_words()
                        ),
                    ));
                }
                Some(_) => summary.count(BoundsVerdict::ProvenSafe),
            }
        }
    }
}

fn check_tile_vs_symbols(
    tile: &TileMap,
    here: &str,
    symbols: &Symbols,
    out: &mut Vec<Diagnostic>,
    summary: &mut BoundsSummary,
) {
    // Only checkable when the tile's base lands in a known array.
    let Some((name, _)) = symbols.locate(tile.global_base().0) else {
        return;
    };
    let words = tile.words_per_field();
    let escaped = tile.iter_field_vaddrs().any(|va| {
        let last = va.0 + words * WORD_BYTES - 1;
        symbols.locate(last).map(|(n, _)| n) != Some(name)
    });
    if escaped {
        summary.count(BoundsVerdict::ProvenOob);
        out.push(Diagnostic::new(
            Rule::ProvenOob,
            format!(
                "{here}: tile at {:#x} extends past the end of array {name} \
                 on every execution",
                tile.global_base().0
            ),
        ));
    } else {
        summary.count(BoundsVerdict::ProvenSafe);
    }
}

fn lane_interval(lanes: &[u32]) -> Interval {
    let lo = lanes.iter().copied().min().unwrap_or(0);
    let hi = lanes.iter().copied().max().unwrap_or(0);
    Interval::new(u64::from(lo), u64::from(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::{AllocId, Kernel, LocalAlloc, MapReq, Stage};
    use mem::addr::VAddr;
    use stash::UsageMode;

    fn local_block(words: u64, lanes: Vec<u32>, tainted: bool) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words });
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes,
        }];
        stage.tainted = tainted;
        tb.stages.push(stage);
        tb
    }

    fn program_of(blocks: Vec<ThreadBlock>) -> Program {
        Program {
            phases: vec![Phase::Gpu(Kernel { blocks })],
        }
    }

    #[test]
    fn in_range_lanes_are_proven_safe() {
        let p = program_of(vec![local_block(8, vec![0, 7], false)]);
        let (diags, summary) = check_bounds(&p, &Symbols::new());
        assert!(diags.is_empty());
        assert_eq!(summary.proven_safe, 1);
        assert_eq!(summary.checked(), 1);
    }

    #[test]
    fn escaping_lanes_are_proven_oob() {
        let p = program_of(vec![local_block(8, vec![0, 8], false)]);
        let (diags, summary) = check_bounds(&p, &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::ProvenOob);
        assert!(diags[0].message.contains("[0, 8]"), "{}", diags[0].message);
        assert_eq!(summary.proven_oob, 1);
    }

    #[test]
    fn tainted_lanes_are_unknown_not_oob() {
        // The concrete witness lane even escapes the allocation, but the
        // stage is data-dependent: a different input might not.
        let p = program_of(vec![local_block(8, vec![0, 100], true)]);
        let (diags, summary) = check_bounds(&p, &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::DataDependentBounds);
        assert_eq!(summary.unknown, 1);
        assert_eq!(summary.proven_oob, 0);
    }

    #[test]
    fn mapped_tile_bounds_are_static_despite_taint() {
        // A tile bigger than its allocation is proven OOB even in a
        // tainted stage — the geometry is not data-dependent.
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 16, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 8 });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        stage.tainted = true;
        tb.stages.push(stage);
        let (diags, summary) = check_bounds(&program_of(vec![tb]), &Symbols::new());
        assert_eq!(summary.proven_oob, 1);
        assert!(diags.iter().any(|d| d.rule == Rule::ProvenOob));
    }

    #[test]
    fn tile_past_array_end_is_proven_oob() {
        let mut symbols = Symbols::new();
        symbols.add("short", VAddr(0x4000), 32);
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 16, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 16 });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        tb.stages.push(stage);
        let (diags, _) = check_bounds(&program_of(vec![tb]), &symbols);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::ProvenOob && d.message.contains("past the end")));
    }

    #[test]
    fn cpu_stash_bounds_are_classified() {
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 8, 0, 1).unwrap();
        let p = Program {
            phases: vec![Phase::Cpu(gpu::program::CpuPhase {
                per_core: vec![vec![
                    CpuOp::StashMem {
                        write: false,
                        slot: 0,
                        word: 7,
                    },
                    CpuOp::StashMem {
                        write: false,
                        slot: 0,
                        word: 8,
                    },
                ]],
                stash_maps: vec![vec![tile]],
            })],
        };
        let (diags, summary) = check_bounds(&p, &Symbols::new());
        assert_eq!(summary.proven_safe, 1);
        assert_eq!(summary.proven_oob, 1);
        assert_eq!(diags.len(), 1);
    }
}
