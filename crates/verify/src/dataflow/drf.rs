//! The generalized DRF pass: race rules re-derived from footprints.
//!
//! [`crate::lint`] decides races by enumerating every word into a hash
//! map — exact, but blind to *why* two blocks conflict and silent about
//! data-dependent accesses. This pass re-derives the same rules from
//! the [`footprint`] abstraction:
//!
//! * two blocks (or CPU cores) whose **exact** footprints overlap with
//!   at least one write get a [`Rule::ProvenRace`] error carrying a
//!   witness word range pulled straight from the set intersection;
//! * overlap that only appears through a [`Taint::Widened`] footprint
//!   gets a [`Rule::DataDependentRace`] warning — the widened tile may
//!   overlap while the real lanes never do;
//! * a kernel with [`Taint::Top`] blocks gets one warning naming them —
//!   unbounded data-dependent addresses can never be proven race-free.
//!
//! On exact footprints this agrees with the linter (the `lint` bin
//! cross-checks both passes); its value is the honest three-way split
//! and the witness ranges.
//!
//! [`footprint`]: crate::dataflow::footprint

use crate::dataflow::domain::Taint;
use crate::dataflow::footprint::{block_footprint, BlockFootprint};
use crate::diag::{Diagnostic, Rule};
use crate::lint::Symbols;
use gpu::program::{CpuOp, Phase, Program};
use mem::addr::WORD_BYTES;

/// Witness words reported per racing pair.
const WITNESS_WORDS: usize = 8;

/// Runs the DRF pass over every kernel and CPU phase.
#[must_use]
pub fn check_races(program: &Program, symbols: &Symbols) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut kernel_idx = 0usize;
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Gpu(kernel) => {
                let fps: Vec<BlockFootprint> = kernel.blocks.iter().map(block_footprint).collect();
                let label = |i: usize| format!("kernel {kernel_idx} block {i}");
                check_group(&fps, &label, symbols, &mut out);
                let top: Vec<usize> = fps
                    .iter()
                    .enumerate()
                    .filter(|(_, fp)| fp.taint == Taint::Top)
                    .map(|(i, _)| i)
                    .collect();
                if !top.is_empty() && fps.len() > 1 {
                    out.push(Diagnostic::new(
                        Rule::DataDependentRace,
                        format!(
                            "kernel {kernel_idx}: {} of {} blocks (e.g. block {}) use \
                             data-dependent global addresses — races cannot be excluded \
                             statically",
                            top.len(),
                            fps.len(),
                            top[0]
                        ),
                    ));
                }
                kernel_idx += 1;
            }
            Phase::Cpu(cpu) => {
                let fps: Vec<BlockFootprint> = cpu
                    .per_core
                    .iter()
                    .enumerate()
                    .map(|(c, ops)| cpu_core_footprint(ops, cpu.stash_maps.get(c)))
                    .collect();
                let label = |c: usize| format!("phase {phase_idx} core {c}");
                check_group(&fps, &label, symbols, &mut out);
            }
        }
    }
    out
}

/// Pairwise race check within one concurrency group.
fn check_group(
    fps: &[BlockFootprint],
    label: &dyn Fn(usize) -> String,
    symbols: &Symbols,
    out: &mut Vec<Diagnostic>,
) {
    // Precompute each footprint's access union once; the pair loop only
    // borrows them.
    let accesses: Vec<_> = fps.iter().map(BlockFootprint::accesses).collect();
    for i in 0..fps.len() {
        for j in i + 1..fps.len() {
            let (a, b) = (&fps[i], &fps[j]);
            if a.taint == Taint::Top || b.taint == Taint::Top {
                continue; // covered by the kernel-level warning
            }
            // A race needs at least one write; read-read sharing is fine.
            let mut witness = a.writes.common_words(&accesses[j], WITNESS_WORDS);
            witness.extend(b.writes.common_words(&accesses[i], WITNESS_WORDS));
            witness.sort_unstable();
            witness.dedup();
            if !witness.is_empty() {
                let (lo, hi) = (witness[0], *witness.last().expect("nonempty"));
                let exact = a.taint == Taint::Exact && b.taint == Taint::Exact;
                let (rule, tail) = if exact {
                    (Rule::ProvenRace, "on every execution")
                } else {
                    (
                        Rule::DataDependentRace,
                        "within a data-dependent (widened) footprint",
                    )
                };
                out.push(Diagnostic::new(
                    rule,
                    format!(
                        "{} and {} conflict on {} (witness: {} word{}, at least one write) {tail}",
                        label(i),
                        label(j),
                        symbols.range(lo, hi),
                        witness.len(),
                        if witness.len() == 1 { "" } else { "s" },
                    ),
                ));
            } else if (a.taint == Taint::Widened || b.taint == Taint::Widened)
                && !(a.writes.disjoint(&accesses[j]) && b.writes.disjoint(&accesses[i]))
            {
                // No concrete witness, but disjointness is unprovable and
                // a widened footprint is involved: honest unknown.
                out.push(Diagnostic::new(
                    Rule::DataDependentRace,
                    format!(
                        "{} and {} have data-dependent footprints that may overlap \
                         — race neither provable nor refutable",
                        label(i),
                        label(j),
                    ),
                ));
            }
        }
    }
}

/// Footprint of one CPU core's op stream (always exact: CPU lanes are
/// literal addresses in the IR).
fn cpu_core_footprint(ops: &[CpuOp], maps: Option<&Vec<mem::tile::TileMap>>) -> BlockFootprint {
    let mut reads: Vec<u64> = Vec::new();
    let mut writes: Vec<u64> = Vec::new();
    for op in ops {
        match op {
            CpuOp::Compute(_) => {}
            CpuOp::Mem { write, vaddr } => {
                let list = if *write { &mut writes } else { &mut reads };
                list.push(vaddr.0 / WORD_BYTES);
            }
            CpuOp::StashMem { write, slot, word } => {
                let Some(tile) = maps.and_then(|m| m.get(*slot)) else {
                    continue; // unmapped: the bounds pass reports it
                };
                if u64::from(*word) >= tile.local_words() {
                    continue;
                }
                let va = tile.virt_of_local_offset(u64::from(*word) * WORD_BYTES);
                let list = if *write { &mut writes } else { &mut reads };
                list.push(va.0 / WORD_BYTES);
            }
        }
    }
    let mut fp = BlockFootprint::default();
    for (mut words, set) in [(reads, &mut fp.reads), (writes, &mut fp.writes)] {
        words.sort_unstable();
        words.dedup();
        set.extend(&crate::dataflow::domain::AffineSet::from_sorted_words(
            &words,
        ));
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::{Kernel, Stage, ThreadBlock, WarpOp};
    use mem::addr::VAddr;

    fn global_block(base: u64, words: u64, write: bool, tainted: bool) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::GlobalMem {
            write,
            lanes: (0..words).map(|w| VAddr(base + w * 4)).collect(),
        }];
        stage.tainted = tainted;
        tb.stages.push(stage);
        tb
    }

    fn one_kernel(blocks: Vec<ThreadBlock>) -> Program {
        Program {
            phases: vec![Phase::Gpu(Kernel { blocks })],
        }
    }

    #[test]
    fn disjoint_blocks_report_nothing() {
        let p = one_kernel(vec![
            global_block(0x1000, 8, true, false),
            global_block(0x2000, 8, true, false),
        ]);
        assert!(check_races(&p, &Symbols::new()).is_empty());
    }

    #[test]
    fn exact_overlap_is_a_proven_race_with_witness() {
        let mut symbols = Symbols::new();
        symbols.add("data", VAddr(0x1000), 0x100);
        let p = one_kernel(vec![
            global_block(0x1000, 8, true, false),
            global_block(0x1010, 8, false, false),
        ]);
        let diags = check_races(&p, &symbols);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::ProvenRace);
        assert!(
            diags[0].message.contains("data[word"),
            "{}",
            diags[0].message
        );
        assert!(diags[0].message.contains("4 words"), "{}", diags[0].message);
    }

    #[test]
    fn read_read_sharing_is_clean() {
        let p = one_kernel(vec![
            global_block(0x1000, 8, false, false),
            global_block(0x1000, 8, false, false),
        ]);
        assert!(check_races(&p, &Symbols::new()).is_empty());
    }

    #[test]
    fn tainted_blocks_warn_instead_of_erroring() {
        let p = one_kernel(vec![
            global_block(0x1000, 4, true, true),
            global_block(0x8000, 4, true, false),
        ]);
        let diags = check_races(&p, &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::DataDependentRace);
        assert!(diags[0].message.contains("data-dependent"));
    }

    #[test]
    fn cpu_core_conflicts_get_witnesses_too() {
        let p = Program {
            phases: vec![Phase::Cpu(gpu::program::CpuPhase {
                per_core: vec![
                    vec![CpuOp::Mem {
                        write: true,
                        vaddr: VAddr(0x1000),
                    }],
                    vec![CpuOp::Mem {
                        write: false,
                        vaddr: VAddr(0x1000),
                    }],
                ],
                stash_maps: Vec::new(),
            })],
        };
        let diags = check_races(&p, &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::ProvenRace);
        assert!(diags[0].message.contains("core 0"));
        assert!(diags[0].message.contains("core 1"));
    }

    #[test]
    fn agrees_with_the_linter_on_exact_programs() {
        // Same racy program through both passes: the linter's error and
        // this pass's proven race name the same pair.
        let p = one_kernel(vec![
            global_block(0x1000, 8, true, false),
            global_block(0x1010, 8, true, false),
        ]);
        let lint = crate::lint::lint_program(&p, &Symbols::new());
        let drf = check_races(&p, &Symbols::new());
        assert_eq!(lint.len(), 1);
        assert_eq!(drf.len(), 1);
        assert_eq!(drf[0].rule, Rule::ProvenRace);
        for needle in ["block 0", "block 1"] {
            assert!(lint[0].message.contains(needle));
            assert!(drf[0].message.contains(needle));
        }
    }
}
