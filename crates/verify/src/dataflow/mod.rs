//! Abstract-interpretation dataflow framework over the workload IR.
//!
//! Where the crate's other passes either enumerate concrete words
//! ([`crate::lint`]) or score access streams ([`crate::analyze`]), this
//! framework interprets a [`Program`] over symbolic **abstract
//! domains** — intervals and affine-stride span sets
//! ([`domain::AffineSpan`]), qualified by a taint lattice
//! ([`domain::Taint`]) that sends data-dependent index expressions to
//! ⊤ — and derives three client passes from one shared footprint
//! extraction ([`footprint`]):
//!
//! 1. [`conflict`] — proves per-(kernel, CU) footprints pairwise
//!    disjoint and emits a [`gpu::ConflictCertificate`]; the machine's
//!    epoch merge uses it to skip per-word owner reconciliation, and
//!    the `--verify` dynamic oracle turns any broken promise into a
//!    hard `SimError::CertificateViolation`.
//! 2. [`oob`] — three-valued bounds verdicts: proven safe, proven out
//!    of bounds ([`crate::Rule::ProvenOob`]), or unknown because
//!    data-dependent ([`crate::Rule::DataDependentBounds`]).
//! 3. [`drf`] — the linter's race rules re-derived from footprints,
//!    with witness word ranges ([`crate::Rule::ProvenRace`]) and the
//!    honest data-dependent middle ground
//!    ([`crate::Rule::DataDependentRace`]).
//!
//! All three passes report through the crate's unified
//! [`crate::Diagnostic`] type; [`dataflow_diagnostics`] runs the two
//! diagnostic passes together.
//!
//! [`Program`]: gpu::program::Program

pub mod conflict;
pub mod domain;
pub mod drf;
pub mod footprint;
pub mod oob;

pub use conflict::{certify, certify_mutated, ConflictMutation, MachineShape};
pub use domain::{AffineSet, AffineSpan, Interval, Taint};
pub use drf::check_races;
pub use footprint::{block_footprint, program_footprints, BlockFootprint, KernelFootprints};
pub use oob::{check_bounds, BoundsSummary, BoundsVerdict};

use crate::diag::Diagnostic;
use crate::lint::Symbols;
use gpu::program::Program;

/// Runs the bounds and DRF passes, returning their diagnostics merged
/// (bounds first) plus the bounds verdict tally.
#[must_use]
pub fn dataflow_diagnostics(
    program: &Program,
    symbols: &Symbols,
) -> (Vec<Diagnostic>, BoundsSummary) {
    let (mut diags, summary) = check_bounds(program, symbols);
    diags.extend(check_races(program, symbols));
    (diags, summary)
}
