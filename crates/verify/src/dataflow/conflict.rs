//! The conflict pass: proves inter-CU footprint disjointness and emits
//! the [`ConflictCertificate`] the machine's epoch merge consumes.
//!
//! For each kernel, blocks are grouped per CU with **the machine's own
//! distribution function** ([`gpu::machine::assign_blocks`] — one
//! source of truth, so the static grouping can never drift from the
//! runtime grouping), the per-CU access sets are unioned, and every CU
//! pair is tested with the sound [`AffineSet::disjoint`](crate::dataflow::domain::AffineSet::disjoint) procedure.
//!
//! # The certificate contract
//!
//! `certified ⇒ runtime-disjoint`, **never** the converse. A kernel
//! verdict of `true` promises that no two CUs will claim the same word
//! (word granularity) or any word of the same line (line granularity)
//! during that kernel's staged merge; `false` only means "not proven"
//! and costs nothing but the per-word reconciliation the merge would
//! have done anyway. Three design points carry the obligation:
//!
//! * the pass compares full access sets (`reads ∪ writes`), because
//!   coherent stash *loads* register ownership just like stores;
//! * a [`Taint::Top`] block makes its kernel uncertifiable whenever
//!   more than one CU is populated — an unbounded data-dependent index
//!   could reach anything;
//! * the line verdict is computed from enumerated line sets (there is
//!   no symbolic shortcut through line-granularity aliasing) and
//!   degrades to `false` when the enumeration would be too large.
//!
//! The `--verify` dynamic oracle in `gpu::memsys` cross-checks the
//! contract at runtime: any two CUs claiming one word in a certified
//! kernel raise a hard `SimError::CertificateViolation`. The
//! [`ConflictMutation`] hooks below deliberately weaken the pass so
//! tests can prove the oracle actually catches unsound certificates.

use crate::dataflow::domain::Taint;
use crate::dataflow::footprint::{kernel_footprints, KernelFootprints, Weakening};
use gpu::machine::{assign_blocks, BlockDistribution};
use gpu::program::{Phase, Program};
use gpu::{ConflictCertificate, KernelCertificate};
use std::collections::HashMap;

/// The machine parameters a certificate is specific to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineShape {
    /// Number of GPU CUs blocks are distributed over.
    pub cus: usize,
    /// The block distribution policy.
    pub distribution: BlockDistribution,
    /// Words per cache line (for the line-granularity verdict).
    pub line_words: u64,
}

/// Deliberate unsoundnesses for mutation testing — each one must make
/// the pass falsely certify some adversarial program, and the dynamic
/// footprint oracle must then catch the lie at runtime. **Never** use
/// outside tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictMutation {
    /// Forget that DMA transfers touch their tiles.
    IgnoreDma,
    /// Trust the concrete lanes of data-dependent stages.
    IgnoreTaint,
    /// Drop the last block of every kernel from its CU's footprint.
    DropLastBlock,
    /// Report the word verdict as the line verdict.
    WordVerdictForLines,
    /// Forget `GlobalMem` lanes entirely.
    IgnoreGlobalLanes,
    /// Pretend every tile has a single row.
    ShrinkTileRows,
}

/// Certifies `program` for `shape`: one [`KernelCertificate`] per GPU
/// kernel, in kernel order (matching the machine's kernel ordinals).
#[must_use]
pub fn certify(program: &Program, shape: &MachineShape) -> ConflictCertificate {
    certify_mutated(program, shape, None)
}

/// [`certify`] with an optional deliberate weakening. Only for tests
/// proving the dynamic oracle catches unsound certificates.
#[must_use]
pub fn certify_mutated(
    program: &Program,
    shape: &MachineShape,
    mutation: Option<ConflictMutation>,
) -> ConflictCertificate {
    let weaken = Weakening {
        ignore_taint: mutation == Some(ConflictMutation::IgnoreTaint),
        ignore_dma: mutation == Some(ConflictMutation::IgnoreDma),
        ignore_global: mutation == Some(ConflictMutation::IgnoreGlobalLanes),
        shrink_tile_rows: mutation == Some(ConflictMutation::ShrinkTileRows),
    };
    let kernels = program
        .phases
        .iter()
        .filter_map(|p| match p {
            Phase::Gpu(kernel) => {
                let mut fps = kernel_footprints(kernel, weaken);
                if mutation == Some(ConflictMutation::DropLastBlock) {
                    fps.blocks.pop();
                }
                let assignment = assign_blocks(kernel, shape.distribution, shape.cus);
                Some(kernel_verdict(&fps, &assignment, shape, mutation))
            }
            Phase::Cpu(_) => None,
        })
        .collect();
    ConflictCertificate {
        cus: shape.cus,
        distribution: shape.distribution,
        kernels,
    }
}

/// Word enumerations larger than this forfeit the line verdict.
const LINE_ENUM_CAP: u64 = 1 << 22;

fn kernel_verdict(
    fps: &KernelFootprints,
    assignment: &[usize],
    shape: &MachineShape,
    mutation: Option<ConflictMutation>,
) -> KernelCertificate {
    // Union each CU's access sets; join each CU's taint.
    let mut per_cu: Vec<(crate::dataflow::domain::AffineSet, Taint)> = Vec::new();
    per_cu.resize_with(shape.cus, Default::default);
    for (fp, &cu) in fps.blocks.iter().zip(assignment) {
        per_cu[cu].0.extend(&fp.accesses());
        per_cu[cu].1 = per_cu[cu].1.join(fp.taint);
    }
    // A ⊤ CU counts as active even when its (meaningless) set is empty.
    let active: Vec<_> = per_cu
        .iter()
        .filter(|(set, taint)| !set.is_empty() || *taint == Taint::Top)
        .collect();
    // A ⊤ CU could touch anything: uncertifiable unless it is alone.
    // (An all-empty kernel, or one whose blocks land on one CU, is
    // vacuously disjoint — there is no pair to conflict.)
    let poisoned = active.len() > 1 && active.iter().any(|(_, t)| *t == Taint::Top);
    let word_disjoint = !poisoned
        && active
            .iter()
            .enumerate()
            .all(|(i, (a, _))| active[i + 1..].iter().all(|(b, _)| a.disjoint(b)));
    let line_disjoint = if mutation == Some(ConflictMutation::WordVerdictForLines) {
        word_disjoint
    } else {
        !poisoned && lines_disjoint(&active, shape.line_words)
    };
    KernelCertificate {
        word_disjoint,
        line_disjoint,
    }
}

/// Whether the active CUs' access sets touch pairwise-disjoint cache
/// lines — decided by exact enumeration, conservatively `false` when a
/// set is too large to enumerate.
fn lines_disjoint(
    active: &[&(crate::dataflow::domain::AffineSet, Taint)],
    line_words: u64,
) -> bool {
    let mut owner: HashMap<u64, usize> = HashMap::new();
    for (cu, (set, _)) in active.iter().enumerate() {
        let Some(words) = set.words_capped(LINE_ENUM_CAP) else {
            return false;
        };
        for w in words {
            let line = w / line_words;
            if *owner.entry(line).or_insert(cu) != cu {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::{Kernel, ThreadBlock, WarpOp};
    use mem::addr::VAddr;

    fn global_block(base: u64, words: u64, write: bool) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        let mut stage = gpu::program::Stage::new(1);
        stage.warps[0] = vec![WarpOp::GlobalMem {
            write,
            lanes: (0..words).map(|w| VAddr(base + w * 4)).collect(),
        }];
        tb.stages.push(stage);
        tb
    }

    fn shape(cus: usize) -> MachineShape {
        MachineShape {
            cus,
            distribution: BlockDistribution::RoundRobin,
            line_words: 16,
        }
    }

    fn one_kernel(blocks: Vec<ThreadBlock>) -> Program {
        Program {
            phases: vec![Phase::Gpu(Kernel { blocks })],
        }
    }

    #[test]
    fn line_separated_blocks_certify_at_both_granularities() {
        // Two blocks, two CUs, 1 KiB apart: disjoint words *and* lines.
        let p = one_kernel(vec![
            global_block(0x1000, 8, true),
            global_block(0x2000, 8, true),
        ]);
        let cert = certify(&p, &shape(2));
        assert_eq!(cert.kernels.len(), 1);
        assert!(cert.kernels[0].word_disjoint);
        assert!(cert.kernels[0].line_disjoint);
        assert_eq!(cert.certified_kernels(), 1);
    }

    #[test]
    fn word_disjoint_but_line_shared_certifies_only_words() {
        // Adjacent half-lines: words 0..8 and 8..16 of one 16-word line.
        let p = one_kernel(vec![
            global_block(0x1000, 8, true),
            global_block(0x1020, 8, true),
        ]);
        let cert = certify(&p, &shape(2));
        assert!(cert.kernels[0].word_disjoint);
        assert!(!cert.kernels[0].line_disjoint);
    }

    #[test]
    fn overlapping_blocks_do_not_certify() {
        let p = one_kernel(vec![
            global_block(0x1000, 8, true),
            global_block(0x1010, 8, false), // reads overlap the writes
        ]);
        let cert = certify(&p, &shape(2));
        assert!(!cert.kernels[0].word_disjoint);
        assert!(!cert.kernels[0].line_disjoint);
    }

    #[test]
    fn single_cu_is_vacuously_certified_even_when_tainted() {
        let mut tb = global_block(0x1000, 4, true);
        tb.stages[0].tainted = true;
        let cert = certify(&one_kernel(vec![tb]), &shape(1));
        assert!(cert.kernels[0].word_disjoint);
        assert!(cert.kernels[0].line_disjoint);
    }

    #[test]
    fn tainted_global_poisons_multi_cu_kernels() {
        let mut tainted = global_block(0x1000, 4, false);
        tainted.stages[0].tainted = true;
        let p = one_kernel(vec![tainted, global_block(0x8000, 4, true)]);
        let cert = certify(&p, &shape(2));
        assert!(!cert.kernels[0].word_disjoint);
        assert!(!cert.kernels[0].line_disjoint);
        // The IgnoreTaint mutation trusts the concrete lanes and
        // (unsoundly) certifies.
        let lied = certify_mutated(&p, &shape(2), Some(ConflictMutation::IgnoreTaint));
        assert!(lied.kernels[0].word_disjoint);
    }

    #[test]
    fn every_mutation_changes_some_verdict() {
        // Each hook must actually weaken the analysis on a program
        // engineered to expose it (full adversarial runs live in the
        // oracle integration tests).
        use ConflictMutation::{
            DropLastBlock, IgnoreDma, IgnoreGlobalLanes, ShrinkTileRows, WordVerdictForLines,
        };
        // Overlapping global writes: dropping lanes or the last block
        // "fixes" the conflict.
        let clash = one_kernel(vec![
            global_block(0x1000, 8, true),
            global_block(0x1000, 8, true),
        ]);
        for m in [IgnoreGlobalLanes, DropLastBlock] {
            assert!(!certify(&clash, &shape(2)).kernels[0].word_disjoint);
            assert!(
                certify_mutated(&clash, &shape(2), Some(m)).kernels[0].word_disjoint,
                "{m:?} should falsely certify"
            );
        }
        // Word-disjoint, line-shared: WordVerdictForLines lies about lines.
        let half_lines = one_kernel(vec![
            global_block(0x1000, 8, true),
            global_block(0x1020, 8, true),
        ]);
        assert!(!certify(&half_lines, &shape(2)).kernels[0].line_disjoint);
        assert!(
            certify_mutated(&half_lines, &shape(2), Some(WordVerdictForLines)).kernels[0]
                .line_disjoint
        );
        // Overlapping DMA tiles: IgnoreDma hides them.
        let tile = mem::tile::TileMap::new(VAddr(0x6000), 4, 4, 8, 0, 1).unwrap();
        let dma_block = || {
            let mut tb = ThreadBlock::new();
            tb.allocs.push(gpu::program::LocalAlloc { words: 8 });
            let mut stage = gpu::program::Stage::new(1);
            stage.dmas.push(gpu::program::DmaReq {
                alloc: gpu::program::AllocId(0),
                tile,
                load: false,
                store: true,
            });
            tb.stages.push(stage);
            tb
        };
        let dma_clash = one_kernel(vec![dma_block(), dma_block()]);
        assert!(!certify(&dma_clash, &shape(2)).kernels[0].word_disjoint);
        assert!(certify_mutated(&dma_clash, &shape(2), Some(IgnoreDma)).kernels[0].word_disjoint);
        // Tiles whose rows 1.. overlap: ShrinkTileRows sees only row 0.
        let rows = |base: u64| mem::tile::TileMap::new(VAddr(base), 4, 4, 4, 0x40, 2).unwrap();
        let row_block = |base: u64| {
            let mut tb = ThreadBlock::new();
            tb.allocs.push(gpu::program::LocalAlloc { words: 8 });
            let mut stage = gpu::program::Stage::new(1);
            stage.dmas.push(gpu::program::DmaReq {
                alloc: gpu::program::AllocId(0),
                tile: rows(base),
                load: false,
                store: true,
            });
            tb.stages.push(stage);
            tb
        };
        // Rows: [base, base+16) and [base+0x40, base+0x40+16). Block B
        // at base+0x40 collides with A's second row only.
        let row_clash = one_kernel(vec![row_block(0x7000), row_block(0x7040)]);
        assert!(!certify(&row_clash, &shape(2)).kernels[0].word_disjoint);
        assert!(
            certify_mutated(&row_clash, &shape(2), Some(ShrinkTileRows)).kernels[0].word_disjoint
        );
    }

    #[test]
    fn certificate_records_shape_for_matching() {
        let p = one_kernel(vec![global_block(0x1000, 4, true)]);
        let cert = certify(&p, &shape(4));
        assert_eq!(cert.cus, 4);
        assert_eq!(cert.distribution, BlockDistribution::RoundRobin);
    }
}
