//! Footprint extraction: abstract interpretation of the workload IR
//! into per-thread-block read/write sets over the [`domain`] lattice.
//!
//! This mirrors the concrete access walk of [`crate::lint`] exactly —
//! same slot-binding semantics (bindings accumulate across stages, only
//! mapped modes bind), same address translation (`LocalMem` lanes
//! through the bound tile, mapped stash data *is* global data), same
//! DMA tile coverage — but abstracts the result into [`AffineSet`]s
//! instead of enumerating words into hash maps, and tracks the
//! [`Taint`] lattice: a stage whose lanes were computed from input
//! *data* contributes its whole hardware-checked region (mapped tile →
//! [`Taint::Widened`]) or poisons the block outright (raw global
//! access → [`Taint::Top`]).
//!
//! Soundness obligations this module carries for the conflict pass:
//!
//! * every word a block can make its CU **claim** during the staged
//!   merge (cache-store registration, coherent stash registration, DMA
//!   store-through) lies in the block's `reads ∪ writes` — claims are a
//!   subset of accesses, and unmapped scratchpad traffic (which never
//!   reaches global addresses) is the only traffic excluded;
//! * for a [`Taint::Widened`] block the sets still cover every lane
//!   *any* input could produce, because the hardware bounds-checks
//!   mapped indices against the tile;
//! * for a [`Taint::Top`] block the sets cover nothing reliably — the
//!   consumer must treat the block as "could touch anything".
//!
//! [`domain`]: crate::dataflow::domain

use crate::dataflow::domain::{AffineSet, AffineSpan, Taint};
use gpu::program::{Kernel, Phase, Program, ThreadBlock, WarpOp};
use mem::addr::WORD_BYTES;
use mem::tile::TileMap;
use std::collections::HashMap;

/// The abstract memory behaviour of one thread block.
#[derive(Debug, Clone, Default)]
pub struct BlockFootprint {
    /// Global words the block may read (word granularity).
    pub reads: AffineSet,
    /// Global words the block may write.
    pub writes: AffineSet,
    /// How trustworthy the sets are (see [`Taint`]).
    pub taint: Taint,
}

impl BlockFootprint {
    /// The full access set, `reads ∪ writes` — what the conflict pass
    /// compares, since coherent stash *loads* register (claim words)
    /// just like stores.
    #[must_use]
    pub fn accesses(&self) -> AffineSet {
        let mut all = self.reads.clone();
        all.extend(&self.writes);
        all
    }
}

/// Footprints of every block of one kernel, in block order.
#[derive(Debug, Clone, Default)]
pub struct KernelFootprints {
    /// One entry per thread block.
    pub blocks: Vec<BlockFootprint>,
}

/// Deliberate weakenings of the extraction, driven by the conflict
/// pass's mutation hooks. All `false` is the sound analysis.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Weakening {
    /// Treat tainted stages as if their lanes were exact.
    pub ignore_taint: bool,
    /// Drop DMA tiles from the footprint.
    pub ignore_dma: bool,
    /// Drop `GlobalMem` lanes from the footprint.
    pub ignore_global: bool,
    /// Pretend every tile has a single row.
    pub shrink_tile_rows: bool,
}

/// Extracts the footprints of every GPU kernel of `program`, in kernel
/// order (CPU phases are skipped — they never contribute to a kernel's
/// staged merge).
#[must_use]
pub fn program_footprints(program: &Program) -> Vec<KernelFootprints> {
    program
        .phases
        .iter()
        .filter_map(|p| match p {
            Phase::Gpu(kernel) => Some(kernel_footprints(kernel, Weakening::default())),
            Phase::Cpu(_) => None,
        })
        .collect()
}

/// Extracts one block's footprint (sound, unweakened).
#[must_use]
pub fn block_footprint(block: &ThreadBlock) -> BlockFootprint {
    block_footprint_weakened(block, Weakening::default())
}

pub(crate) fn kernel_footprints(kernel: &Kernel, weaken: Weakening) -> KernelFootprints {
    KernelFootprints {
        blocks: kernel
            .blocks
            .iter()
            .map(|b| block_footprint_weakened(b, weaken))
            .collect(),
    }
}

pub(crate) fn block_footprint_weakened(block: &ThreadBlock, weaken: Weakening) -> BlockFootprint {
    let mut fp = BlockFootprint::default();
    // Raw word lists for lane-level accesses; compressed into spans at
    // the end so regular patterns stay symbolic.
    let mut read_words: Vec<u64> = Vec::new();
    let mut write_words: Vec<u64> = Vec::new();
    // Same binding rule as the linter: bindings accumulate as stages
    // progress, only mapped modes bind.
    let mut bindings: HashMap<usize, TileMap> = HashMap::new();
    for stage in &block.stages {
        let tainted = stage.tainted && !weaken.ignore_taint;
        for m in &stage.maps {
            if m.mode.is_mapped() {
                bindings.insert(m.slot, m.tile);
            }
        }
        for d in &stage.dmas {
            if weaken.ignore_dma {
                continue;
            }
            let set = tile_set(&d.tile, weaken.shrink_tile_rows);
            if d.load {
                fp.reads.extend(&set);
            }
            if d.store {
                fp.writes.extend(&set);
            }
        }
        for op in stage.warps.iter().flatten() {
            match op {
                WarpOp::Compute(_) => {}
                WarpOp::GlobalMem { write, lanes } => {
                    if weaken.ignore_global {
                        continue;
                    }
                    if tainted {
                        // Data-dependent raw global addresses: nothing
                        // bounds them, the block's footprint is ⊤.
                        fp.taint = Taint::Top;
                        continue;
                    }
                    let out = if *write {
                        &mut write_words
                    } else {
                        &mut read_words
                    };
                    out.extend(lanes.iter().map(|va| va.0 / WORD_BYTES));
                }
                WarpOp::LocalMem {
                    write, slot, lanes, ..
                } => {
                    // Unmapped slots are private scratchpad: no global
                    // address, no footprint, no claim.
                    let Some(tile) = bindings.get(slot) else {
                        continue;
                    };
                    if tainted {
                        // The lanes are one witness; the hardware bounds
                        // any input's lanes to the mapped tile, so the
                        // whole tile is a sound widening.
                        fp.taint = fp.taint.join(Taint::Widened);
                        let set = tile_set(tile, weaken.shrink_tile_rows);
                        if *write {
                            fp.writes.extend(&set);
                        } else {
                            fp.reads.extend(&set);
                        }
                        continue;
                    }
                    let limit = tile.local_words();
                    let out = if *write {
                        &mut write_words
                    } else {
                        &mut read_words
                    };
                    for &lane in lanes {
                        let lane = u64::from(lane);
                        // Out-of-range lanes are the OOB pass's problem;
                        // they trap in the machine and claim nothing.
                        if lane < limit {
                            out.push(tile.virt_of_local_offset(lane * WORD_BYTES).0 / WORD_BYTES);
                        }
                    }
                }
            }
        }
    }
    for (words, set) in [
        (&mut read_words, &mut fp.reads),
        (&mut write_words, &mut fp.writes),
    ] {
        words.sort_unstable();
        words.dedup();
        set.extend(&AffineSet::from_sorted_words(words));
    }
    fp
}

/// The word set a [`TileMap`] denotes: one affine span per row
/// (contiguous when the tile takes whole objects).
pub(crate) fn tile_set(tile: &TileMap, first_row_only: bool) -> AffineSet {
    let width = tile.words_per_field();
    let stride = tile.object_bytes() / WORD_BYTES;
    let rows = if first_row_only { 1 } else { tile.rows() };
    let mut set = AffineSet::new();
    for r in 0..rows {
        let base = (tile.global_base().0 + r * tile.row_stride_bytes()) / WORD_BYTES;
        if stride == width {
            set.push(AffineSpan::contiguous(base, tile.row_elems() * width));
        } else {
            set.push(AffineSpan::new(base, stride, tile.row_elems(), width));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::{AllocId, LocalAlloc, MapReq, Stage};
    use mem::addr::VAddr;
    use stash::UsageMode;

    fn mapped_block(tile: TileMap, write: bool, lanes: Vec<u32>, tainted: bool) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc {
            words: tile.local_words(),
        });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        stage.warps[0] = vec![WarpOp::LocalMem {
            write,
            alloc: AllocId(0),
            slot: 0,
            lanes,
        }];
        stage.tainted = tainted;
        tb.stages.push(stage);
        tb
    }

    #[test]
    fn mapped_lanes_translate_like_the_linter() {
        // 1 field word of a 2-word object, 4 elems/row, 2 rows.
        let tile = TileMap::new(VAddr(0x1000), 4, 8, 4, 0x100, 2).unwrap();
        let fp = block_footprint(&mapped_block(tile, true, vec![0, 1, 2, 3], false));
        assert_eq!(fp.taint, Taint::Exact);
        assert!(fp.reads.is_empty());
        // Lanes 0..4 are row 0: strided words 0x400, 0x402, 0x404, 0x406.
        let words = fp.writes.words_capped(1 << 10).unwrap();
        assert_eq!(
            words.into_iter().collect::<Vec<_>>(),
            vec![0x400, 0x402, 0x404, 0x406]
        );
    }

    #[test]
    fn tainted_mapped_stage_widens_to_the_whole_tile() {
        let tile = TileMap::new(VAddr(0x1000), 4, 8, 4, 0x100, 2).unwrap();
        // Only one concrete lane, but tainted: footprint is all 8 fields.
        let fp = block_footprint(&mapped_block(tile, false, vec![0], true));
        assert_eq!(fp.taint, Taint::Widened);
        assert_eq!(fp.reads.words_capped(1 << 10).unwrap().len(), 8);
    }

    #[test]
    fn tainted_global_stage_is_top() {
        let mut tb = ThreadBlock::new();
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::GlobalMem {
            write: false,
            lanes: vec![VAddr(0x1000)],
        }];
        stage.tainted = true;
        tb.stages.push(stage);
        assert_eq!(block_footprint(&tb).taint, Taint::Top);
    }

    #[test]
    fn scratchpad_traffic_leaves_no_footprint() {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 64 });
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: true,
            alloc: AllocId(0),
            slot: 0,
            lanes: (0..32).collect(),
        }];
        tb.stages.push(stage);
        let fp = block_footprint(&tb);
        assert!(fp.reads.is_empty() && fp.writes.is_empty());
    }

    #[test]
    fn dma_tiles_cover_load_and_store_sides() {
        let tile = TileMap::new(VAddr(0x8000), 4, 4, 8, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 8 });
        let mut stage = Stage::new(1);
        stage.dmas.push(gpu::program::DmaReq {
            alloc: AllocId(0),
            tile,
            load: true,
            store: true,
        });
        tb.stages.push(stage);
        let fp = block_footprint(&tb);
        assert_eq!(fp.reads.words_capped(64).unwrap().len(), 8);
        assert_eq!(fp.writes.words_capped(64).unwrap().len(), 8);
    }

    #[test]
    fn footprint_covers_every_linted_word() {
        // Cross-check against the concrete semantics: global lanes plus
        // mapped lanes land in the abstract sets.
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 16, 0, 1).unwrap();
        let mut tb = mapped_block(tile, true, (0..16).collect(), false);
        tb.stages[0].warps[0].push(WarpOp::GlobalMem {
            write: false,
            lanes: (0..8).map(|i| VAddr(0x9000 + i * 4)).collect(),
        });
        let fp = block_footprint(&tb);
        let writes = fp.writes.words_capped(1 << 12).unwrap();
        for lane in 0..16u64 {
            let va = tile.virt_of_local_offset(lane * WORD_BYTES);
            assert!(writes.contains(&(va.0 / WORD_BYTES)));
        }
        let reads = fp.reads.words_capped(1 << 12).unwrap();
        for i in 0..8u64 {
            assert!(reads.contains(&((0x9000 + i * 4) / 4)));
        }
    }
}
