//! Abstract domains for address expressions: intervals, affine-stride
//! span sets, and the taint lattice.
//!
//! Everything is word-granular (global word number = byte address /
//! [`WORD_BYTES`]). The central object is the [`AffineSpan`]
//! `{base + k·stride + u | k < count, u < width}` — exactly the shape a
//! stash-map `AddMap` descriptor denotes (a strided row of mapped
//! fields), and the shape thread/block-indexed lane patterns lower to.
//! An [`AffineSet`] is a finite union of spans.
//!
//! The payoff is [`AffineSpan::disjoint`]: a *sound* decision procedure
//! (`true` ⇒ the concrete word sets share nothing) that proves the
//! interesting cases symbolically — separated bounding intervals, or
//! separated residue classes modulo the stride gcd (two tiles
//! interleaved row-by-row through the same array never collide when
//! their column windows differ) — and falls back to exact enumeration
//! only for small spans. `false` means "could not prove", never "proven
//! to overlap"; use [`AffineSpan::common_words`] for an overlap
//! *witness*.

use mem::addr::WORD_BYTES;
use std::collections::BTreeSet;

/// Spans at most this many words are enumerated exactly when the
/// symbolic disjointness arguments fail.
const ENUM_CAP: u64 = 1 << 14;

/// A nonempty inclusive interval of global word numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest word in the interval.
    pub lo: u64,
    /// Largest word in the interval.
    pub hi: u64,
}

impl Interval {
    /// The interval `[lo, hi]`; `lo` must not exceed `hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (an empty interval has no representation —
    /// use `Option<Interval>`).
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Interval {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The single-word interval `[w, w]`.
    #[must_use]
    pub fn point(w: u64) -> Interval {
        Interval { lo: w, hi: w }
    }

    /// The least interval containing both (lattice join).
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The intersection, or `None` when the intervals are disjoint.
    #[must_use]
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Whether `w` lies inside the interval.
    #[must_use]
    pub fn contains(self, w: u64) -> bool {
        self.lo <= w && w <= self.hi
    }

    /// Abstract addition: `{a + b | a ∈ self, b ∈ other}` is contained
    /// in the result (exact for intervals; saturates on overflow).
    #[must_use]
    #[allow(clippy::should_implement_trait)] // abstract-domain op, not ops::Add
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// Number of words covered. Always positive: intervals are non-empty
    /// by construction (`lo <= hi`), so there is no `is_empty`.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u64 {
        self.hi - self.lo + 1
    }
}

/// The taint lattice: how trustworthy a footprint's index expressions
/// are. Ordered `Exact < Widened < Top`; the join is the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Taint {
    /// Every index is a pure function of thread/block ids — the lowered
    /// lanes are the only lanes any input produces.
    #[default]
    Exact,
    /// Some indices are data-dependent but *bounded*: the footprint was
    /// widened to the full hardware-checked region (a mapped tile or
    /// allocation), so it still over-approximates every input soundly.
    Widened,
    /// A data-dependent index escaped every static bound (a raw global
    /// access); the footprint means ⊤ and proves nothing.
    Top,
}

impl Taint {
    /// Lattice join.
    #[must_use]
    pub fn join(self, other: Taint) -> Taint {
        self.max(other)
    }
}

/// The strided word set `{base + k·stride + u | k < count, u < width}`.
///
/// `count == 1` is a plain contiguous run (`stride` is ignored). The
/// set denotation never overflows: constructors reject geometries whose
/// maximum word exceeds `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineSpan {
    /// First word of the first run.
    pub base: u64,
    /// Words between run starts (meaningful when `count > 1`).
    pub stride: u64,
    /// Number of runs.
    pub count: u64,
    /// Contiguous words per run.
    pub width: u64,
}

impl AffineSpan {
    /// A strided span.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `width` is zero, or the last word overflows.
    #[must_use]
    pub fn new(base: u64, stride: u64, count: u64, width: u64) -> AffineSpan {
        assert!(count > 0 && width > 0, "empty span");
        let span = AffineSpan {
            base,
            stride,
            count,
            width,
        };
        // Force the overflow check in max_word.
        let _ = span.max_word();
        span
    }

    /// A contiguous run of `width` words at `base`.
    #[must_use]
    pub fn contiguous(base: u64, width: u64) -> AffineSpan {
        AffineSpan::new(base, 0, 1, width)
    }

    /// Smallest word in the span.
    #[must_use]
    pub fn min_word(&self) -> u64 {
        self.base
    }

    /// Largest word in the span.
    #[must_use]
    pub fn max_word(&self) -> u64 {
        self.base
            .checked_add((self.count - 1).checked_mul(self.stride).expect("span end"))
            .and_then(|b| b.checked_add(self.width - 1))
            .expect("span end overflows")
    }

    /// The bounding interval.
    #[must_use]
    pub fn hull(&self) -> Interval {
        Interval::new(self.min_word(), self.max_word())
    }

    /// Upper bound on the number of words (exact when runs don't
    /// self-overlap).
    #[must_use]
    pub fn words_bound(&self) -> u64 {
        self.count.saturating_mul(self.width)
    }

    /// Iterates every word in the set (runs may repeat words when
    /// `stride < width`; consumers dedup).
    pub fn words(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count)
            .flat_map(move |k| (0..self.width).map(move |u| self.base + k * self.stride + u))
    }

    /// Sound disjointness: `true` means the two concrete word sets are
    /// provably disjoint; `false` means overlap could not be excluded.
    ///
    /// Three arguments, in order: separated bounding intervals;
    /// separated residue windows modulo `gcd(stride_a, stride_b)` (the
    /// workhorse for tiles interleaved through a common array); exact
    /// enumeration for small spans.
    #[must_use]
    pub fn disjoint(&self, other: &AffineSpan) -> bool {
        if self.hull().intersect(other.hull()).is_none() {
            return true;
        }
        // A span with one run has no stride; gcd(0, s) = s keeps the
        // residue argument valid (its words are one contiguous window,
        // which is a window modulo anything).
        let sa = if self.count > 1 { self.stride } else { 0 };
        let sb = if other.count > 1 { other.stride } else { 0 };
        let g = gcd(sa, sb);
        if g > 1 && self.width < g && other.width < g {
            // Each set lives in a circular window of its width modulo g.
            let a0 = self.base % g;
            let b0 = other.base % g;
            let in_a = (b0 + g - a0) % g < self.width;
            let in_b = (a0 + g - b0) % g < other.width;
            if !in_a && !in_b {
                return true;
            }
        }
        if self.words_bound() + other.words_bound() <= ENUM_CAP {
            return self.common_words(other, 1).is_empty();
        }
        false
    }

    /// Up to `limit` words the two spans *actually* share, by
    /// enumeration (empty when disjoint, or when the spans are too big
    /// to enumerate — this is a witness finder, not a decision
    /// procedure).
    #[must_use]
    pub fn common_words(&self, other: &AffineSpan, limit: usize) -> Vec<u64> {
        if self.hull().intersect(other.hull()).is_none()
            || self.words_bound() + other.words_bound() > ENUM_CAP
        {
            return Vec::new();
        }
        let a: BTreeSet<u64> = self.words().collect();
        let mut out = Vec::new();
        for w in other.words() {
            if a.contains(&w) {
                out.push(w);
                if out.len() >= limit {
                    break;
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A finite union of [`AffineSpan`]s — the footprint abstraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AffineSet {
    spans: Vec<AffineSpan>,
}

impl AffineSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> AffineSet {
        AffineSet::default()
    }

    /// Adds a span to the union.
    pub fn push(&mut self, span: AffineSpan) {
        self.spans.push(span);
    }

    /// Adds every span of `other`.
    pub fn extend(&mut self, other: &AffineSet) {
        self.spans.extend_from_slice(&other.spans);
    }

    /// The member spans.
    #[must_use]
    pub fn spans(&self) -> &[AffineSpan] {
        &self.spans
    }

    /// Whether the set denotes no words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The bounding interval, or `None` when empty.
    #[must_use]
    pub fn hull(&self) -> Option<Interval> {
        self.spans
            .iter()
            .map(AffineSpan::hull)
            .reduce(Interval::hull)
    }

    /// Upper bound on the number of words.
    #[must_use]
    pub fn words_bound(&self) -> u64 {
        self.spans.iter().map(AffineSpan::words_bound).sum()
    }

    /// Compresses a sorted, deduplicated word list into spans: maximal
    /// contiguous runs first, then runs of equal length at a constant
    /// gap fused into strided spans. Exact: the result denotes the
    /// input, nothing more.
    #[must_use]
    pub fn from_sorted_words(words: &[u64]) -> AffineSet {
        debug_assert!(words.windows(2).all(|p| p[0] < p[1]), "sorted + dedup");
        // Pass 1: contiguous runs.
        let mut runs: Vec<(u64, u64)> = Vec::new(); // (start, len)
        for &w in words {
            match runs.last_mut() {
                Some((start, len)) if *start + *len == w => *len += 1,
                _ => runs.push((w, 1)),
            }
        }
        // Pass 2: fuse equal-length runs at a constant positive gap.
        let mut set = AffineSet::new();
        let mut i = 0;
        while i < runs.len() {
            let (base, width) = runs[i];
            let mut count = 1;
            if i + 1 < runs.len() && runs[i + 1].1 == width {
                let stride = runs[i + 1].0 - base;
                while i + count < runs.len()
                    && runs[i + count].1 == width
                    && runs[i + count].0 == base + count as u64 * stride
                {
                    count += 1;
                }
                if count > 1 {
                    set.push(AffineSpan::new(base, stride, count as u64, width));
                    i += count;
                    continue;
                }
            }
            set.push(AffineSpan::contiguous(base, width));
            i += 1;
        }
        set
    }

    /// Sound disjointness against another set (every span pair must be
    /// provably disjoint).
    #[must_use]
    pub fn disjoint(&self, other: &AffineSet) -> bool {
        match (self.hull(), other.hull()) {
            (Some(a), Some(b)) if a.intersect(b).is_some() => {}
            _ => return true, // a set is empty or the hulls are separated
        }
        self.spans
            .iter()
            .all(|a| other.spans.iter().all(|b| a.disjoint(b)))
    }

    /// Up to `limit` words provably shared with `other` (witnesses for
    /// race reports; empty does *not* prove disjointness).
    #[must_use]
    pub fn common_words(&self, other: &AffineSet, limit: usize) -> Vec<u64> {
        match (self.hull(), other.hull()) {
            (Some(a), Some(b)) if a.intersect(b).is_some() => {}
            _ => return Vec::new(),
        }
        let mut out = Vec::new();
        for a in &self.spans {
            for b in &other.spans {
                out.extend(a.common_words(b, limit));
                if out.len() >= limit {
                    out.sort_unstable();
                    out.dedup();
                    out.truncate(limit);
                    return out;
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out.truncate(limit);
        out
    }

    /// Every word in the set, or `None` when the enumeration would
    /// exceed `cap` words (used for line-granularity conversion, which
    /// has no symbolic shortcut).
    #[must_use]
    pub fn words_capped(&self, cap: u64) -> Option<BTreeSet<u64>> {
        if self.words_bound() > cap {
            return None;
        }
        Some(self.spans.iter().flat_map(AffineSpan::words).collect())
    }
}

/// Word number of a byte address.
#[must_use]
pub fn word_of_byte(addr: u64) -> u64 {
    addr / WORD_BYTES
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concrete denotation, for oracle comparisons.
    fn concrete(s: &AffineSpan) -> BTreeSet<u64> {
        s.words().collect()
    }

    #[test]
    fn interval_ops_are_exact() {
        // Exhaustive over a small grid: hull/intersect/contains agree
        // with the concrete sets they abstract.
        for alo in 0..6u64 {
            for ahi in alo..6 {
                for blo in 0..6u64 {
                    for bhi in blo..6 {
                        let a = Interval::new(alo, ahi);
                        let b = Interval::new(blo, bhi);
                        let sa: BTreeSet<u64> = (alo..=ahi).collect();
                        let sb: BTreeSet<u64> = (blo..=bhi).collect();
                        let inter: BTreeSet<u64> = sa.intersection(&sb).copied().collect();
                        match a.intersect(b) {
                            None => assert!(inter.is_empty()),
                            Some(i) => {
                                assert_eq!(
                                    (i.lo, i.hi),
                                    (
                                        *inter.first().expect("nonempty"),
                                        *inter.last().expect("nonempty")
                                    )
                                );
                            }
                        }
                        let h = a.hull(b);
                        assert!(sa.union(&sb).all(|&w| h.contains(w)));
                        assert_eq!(h.lo, alo.min(blo));
                        assert_eq!(h.hi, ahi.max(bhi));
                    }
                }
            }
        }
    }

    #[test]
    fn interval_add_contains_concrete_sums() {
        for alo in 0..5u64 {
            for ahi in alo..5 {
                for blo in 0..5u64 {
                    for bhi in blo..5 {
                        let sum = Interval::new(alo, ahi).add(Interval::new(blo, bhi));
                        for a in alo..=ahi {
                            for b in blo..=bhi {
                                assert!(sum.contains(a + b));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn span_disjointness_is_exact_on_small_spans() {
        // Exhaustive over small geometries: small spans hit the exact
        // enumeration fallback, so `disjoint` must equal the concrete
        // answer in *both* directions — soundness and completeness.
        let mut checked = 0u64;
        for base_a in [0u64, 3, 7, 16] {
            for (sa, na, wa) in small_geometries() {
                for base_b in [0u64, 2, 5, 16] {
                    for (sb, nb, wb) in small_geometries() {
                        let a = AffineSpan::new(base_a, sa, na, wa);
                        let b = AffineSpan::new(base_b, sb, nb, wb);
                        let truly = concrete(&a).intersection(&concrete(&b)).next().is_none();
                        assert_eq!(
                            a.disjoint(&b),
                            truly,
                            "a={a:?} b={b:?} concrete-disjoint={truly}"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000);
    }

    fn small_geometries() -> Vec<(u64, u64, u64)> {
        // (stride, count, width) mixes: contiguous, strided, overlapping
        // runs (stride < width), wide runs.
        vec![
            (0, 1, 1),
            (0, 1, 4),
            (0, 1, 9),
            (4, 3, 2),
            (4, 4, 4),
            (5, 3, 2),
            (3, 4, 4),
            (8, 2, 3),
            (16, 3, 8),
        ]
    }

    #[test]
    fn residue_argument_proves_large_interleaved_tiles_disjoint() {
        // Two 16×16 tiles threaded through a 512-wide row-major array
        // with different column windows — the `nw` pattern. Too big for
        // hull separation (rows interleave), provable by residues.
        let a = AffineSpan::new(0x1000, 512, 512, 16);
        let b = AffineSpan::new(0x1000 + 16, 512, 512, 16);
        assert!(a.hull().intersect(b.hull()).is_some());
        assert!(a.disjoint(&b));
        assert!(b.disjoint(&a));
        // Same column window: truly overlapping, never "proven" safe.
        let c = AffineSpan::new(0x1000, 512, 512, 16);
        assert!(!a.disjoint(&c));
        assert_eq!(a.common_words(&c, 1).len(), 1);
    }

    #[test]
    fn soundness_never_certifies_overlap() {
        // Deterministic pseudo-random large spans sharing their base
        // word always overlap; `disjoint` must never claim otherwise.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let stride = 64 + (x >> 7) % 512;
            let count = 64 + (x >> 23) % 64;
            let width = 1 + (x >> 41) % 32;
            let base = (x >> 13) % (1 << 30);
            let a = AffineSpan::new(base, stride, count, width.min(stride));
            let b = AffineSpan::new(base, stride / 2 + 1, count * 2, width.min(stride / 2 + 1));
            assert!(!a.disjoint(&b), "{a:?} vs {b:?} share {base}");
        }
    }

    #[test]
    fn compression_roundtrips_exactly() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![5],
            vec![1, 2, 3, 4],
            vec![0, 1, 4, 5, 8, 9, 12, 13],        // strided pairs
            vec![0, 1, 2, 10, 11, 12, 20, 21, 22], // strided triples
            vec![0, 3, 7, 8, 9, 50],               // irregular
            (0..100).map(|i| i * 7).collect(),     // pure stride
        ];
        for words in cases {
            let set = AffineSet::from_sorted_words(&words);
            let mut back: Vec<u64> = set.spans().iter().flat_map(AffineSpan::words).collect();
            back.sort_unstable();
            back.dedup();
            assert_eq!(back, words);
            // Compression actually compresses the regular patterns.
            if words.len() >= 8 {
                assert!(set.spans().len() <= words.len() / 2);
            }
        }
    }

    #[test]
    fn taint_join_is_monotone() {
        use Taint::{Exact, Top, Widened};
        assert_eq!(Exact.join(Widened), Widened);
        assert_eq!(Widened.join(Top), Top);
        assert_eq!(Exact.join(Exact), Exact);
        assert_eq!(Top.join(Exact), Top);
    }

    #[test]
    fn set_disjointness_and_witnesses() {
        let mut a = AffineSet::new();
        a.push(AffineSpan::contiguous(0, 16));
        a.push(AffineSpan::new(1024, 32, 8, 4));
        let mut b = AffineSet::new();
        b.push(AffineSpan::contiguous(16, 16));
        b.push(AffineSpan::new(1024 + 8, 32, 8, 4));
        assert!(!a.disjoint(&b) || a.common_words(&b, 4).is_empty());
        // The strided members interleave without touching: 4-wide at
        // offsets 0 and 8 of each 32-word period.
        assert!(a.spans()[1].disjoint(&b.spans()[1]));
        // Shift by 2 creates real overlap with witnesses.
        let mut c = AffineSet::new();
        c.push(AffineSpan::new(1024 + 2, 32, 8, 4));
        assert!(!a.disjoint(&c));
        let w = a.common_words(&c, 8);
        assert!(!w.is_empty());
        assert!(w
            .iter()
            .all(|w| (w - 1024) % 32 < 4 && (w - 1024 - 2) % 32 < 4));
    }
}
