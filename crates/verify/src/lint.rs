//! Static DRF linter over the workload IR.
//!
//! DeNovo guarantees coherence only for **data-race-free** programs
//! (§4.3): within one kernel there is no inter-thread-block
//! synchronization, and CPU L1s are never self-invalidated, so a racy
//! [`Program`] silently produces garbage timing rather than an error.
//! This pass finds those inputs *before* simulation:
//!
//! * **Cross-block races** — word-granularity conflicting accesses
//!   (≥ 1 write) from different thread blocks of the same kernel. A
//!   block's global footprint is its `GlobalMem` lanes, its `LocalMem`
//!   lanes translated through the stage's active tile bindings (mapped
//!   stash data *is* global data), and its DMA tiles.
//! * **Cross-core CPU races** — the same, between the concurrent
//!   per-core op streams of one CPU phase.
//! * **CPU stale reads** — a CPU core re-reads a word it still holds
//!   Shared after another agent overwrote it. Kernel boundaries
//!   self-invalidate GPU L1s and stashes but never CPU L1s, so this is
//!   the unsynchronized CPU/GPU phase-overlap hazard of the
//!   implementation.
//! * **Out-of-bounds indices** — `LocalMem`/`StashMem` lanes beyond the
//!   allocation or mapped tile, tiles larger than their allocation, and
//!   (when symbols are provided) tiles extending past their array.
//!
//! Diagnostics name the array (via [`Symbols`], falling back to raw
//! addresses), the conflicting word range, and the two conflicting
//! tasks. Read-read sharing is never reported.

use gpu::program::{CpuOp, CpuPhase, Kernel, Phase, Program, ThreadBlock, WarpOp};
use mem::addr::{VAddr, WORD_BYTES};
use mem::tile::TileMap;
use std::collections::{HashMap, HashSet};

// The linter reports through the crate-wide unified diagnostic type
// (stable rule codes, severity levels) shared with `analyze` and
// `dataflow`; re-exported here so `lint::Diagnostic` keeps working.
pub use crate::diag::{Diagnostic, Rule, Severity};

/// Array names for diagnostics: `(name, base, footprint)` triples.
///
/// Built from a trace workload's arrays (or any other source of symbol
/// information); an empty table degrades diagnostics to raw hex ranges.
#[derive(Debug, Clone, Default)]
pub struct Symbols {
    entries: Vec<(String, u64, u64)>, // (name, base byte addr, bytes)
}

impl Symbols {
    /// An empty table.
    pub fn new() -> Symbols {
        Symbols::default()
    }

    /// Registers an array covering `[base, base + bytes)`.
    pub fn add(&mut self, name: &str, base: VAddr, bytes: u64) {
        self.entries.push((name.to_string(), base.0, bytes));
    }

    /// The array containing byte address `addr`, with the element word
    /// index inside it.
    pub(crate) fn locate(&self, addr: u64) -> Option<(&str, u64)> {
        self.entries
            .iter()
            .find(|(_, base, bytes)| addr >= *base && addr < base + bytes)
            .map(|(name, base, _)| (name.as_str(), (addr - base) / WORD_BYTES))
    }

    /// Formats a word range `[lo, hi]` (inclusive, in global word
    /// numbers) as `name[words a..b]` or a raw address range.
    pub(crate) fn range(&self, lo: u64, hi: u64) -> String {
        match self.locate(lo * WORD_BYTES) {
            Some((name, w)) => {
                let span = hi - lo;
                format!("{name}[word {w}..{}]", w + span)
            }
            None => format!("{:#x}..{:#x}", lo * WORD_BYTES, (hi + 1) * WORD_BYTES),
        }
    }
}

/// Per-word access record inside one concurrency group (kernel or CPU
/// phase): enough readers/writers to decide any conflict.
#[derive(Debug, Clone, Copy, Default)]
struct WordAccess {
    writer: Option<u32>,
    readers: [Option<u32>; 2],
}

impl WordAccess {
    /// Records an access; returns the conflicting task on a race.
    fn record(&mut self, task: u32, write: bool) -> Option<(u32, bool)> {
        if write {
            if let Some(w) = self.writer {
                if w != task {
                    return Some((w, true));
                }
            }
            if let Some(r) = self.readers.iter().flatten().find(|&&r| r != task) {
                return Some((*r, false));
            }
            self.writer = Some(task);
            None
        } else {
            if let Some(w) = self.writer {
                if w != task {
                    return Some((w, true));
                }
            }
            match self.readers {
                [None, _] => self.readers[0] = Some(task),
                [Some(r), None] if r != task => self.readers[1] = Some(task),
                _ => {}
            }
            None
        }
    }
}

/// Conflict detector for one concurrency group; words are global word
/// numbers (`byte address / 4`).
struct Group<'a> {
    words: HashMap<u64, WordAccess>,
    /// Conflicting word numbers per unordered task pair.
    conflicts: HashMap<(u32, u32), (Vec<u64>, bool)>,
    label: &'a dyn Fn(u32) -> String,
}

impl<'a> Group<'a> {
    fn new(label: &'a dyn Fn(u32) -> String) -> Group<'a> {
        Group {
            words: HashMap::new(),
            conflicts: HashMap::new(),
            label,
        }
    }

    fn access(&mut self, task: u32, word: u64, write: bool) {
        if let Some((other, other_writes)) = self.words.entry(word).or_default().record(task, write)
        {
            let key = (task.min(other), task.max(other));
            let e = self.conflicts.entry(key).or_default();
            e.0.push(word);
            e.1 |= write || other_writes;
        }
    }

    fn access_tile(&mut self, task: u32, tile: &TileMap, write: bool) {
        for (va, words) in tile_field_words(tile) {
            for w in 0..words {
                self.access(task, va.0 / WORD_BYTES + w, write);
            }
        }
    }

    /// Drains the recorded conflicts into diagnostics.
    fn diagnostics(self, rule: Rule, symbols: &Symbols, out: &mut Vec<Diagnostic>) {
        let mut pairs: Vec<_> = self.conflicts.into_iter().collect();
        pairs.sort_by_key(|&(k, _)| k);
        for ((a, b), (mut words, any_write)) in pairs {
            if !any_write {
                continue; // read-read sharing is fine
            }
            words.sort_unstable();
            words.dedup();
            let (lo, hi) = (words[0], *words.last().expect("nonempty"));
            out.push(Diagnostic {
                rule,
                message: format!(
                    "{} and {} both access {} ({} conflicting word{}) with at least \
                     one write and no intervening synchronization",
                    (self.label)(a),
                    (self.label)(b),
                    symbols.range(lo, hi),
                    words.len(),
                    if words.len() == 1 { "" } else { "s" },
                ),
            });
        }
    }
}

/// `(field base vaddr, words per field)` for every element of a tile.
fn tile_field_words(tile: &TileMap) -> impl Iterator<Item = (VAddr, u64)> + '_ {
    let words = tile.words_per_field();
    tile.iter_field_vaddrs().map(move |va| (va, words))
}

/// Lints `program`, returning every diagnostic found (empty = clean).
///
/// `symbols` (optionally built from a trace workload's arrays via
/// [`crate::symbols_for_trace`]) only improves messages; detection does
/// not depend on it.
pub fn lint_program(program: &Program, symbols: &Symbols) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut stale = StaleTracker::default();
    let mut kernel_idx = 0usize;
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Gpu(kernel) => {
                lint_kernel(kernel, kernel_idx, symbols, &mut stale, &mut out);
                kernel_idx += 1;
            }
            Phase::Cpu(cpu) => lint_cpu_phase(cpu, phase_idx, symbols, &mut stale, &mut out),
        }
    }
    out
}

fn lint_kernel(
    kernel: &Kernel,
    kernel_idx: usize,
    symbols: &Symbols,
    stale: &mut StaleTracker,
    out: &mut Vec<Diagnostic>,
) {
    let label = move |b: u32| format!("kernel {kernel_idx} block {b}");
    let mut group = Group::new(&label);
    let mut writes: Vec<u64> = Vec::new();
    for (b, block) in kernel.blocks.iter().enumerate() {
        lint_block(
            block,
            b as u32,
            kernel_idx,
            symbols,
            &mut group,
            &mut writes,
            out,
        );
    }
    group.diagnostics(Rule::CrossBlockRace, symbols, out);
    stale.gpu_writes(&writes, kernel_idx);
}

/// Walks one thread block, feeding the kernel's conflict group and the
/// cross-phase write set, and checking index bounds.
fn lint_block(
    block: &ThreadBlock,
    task: u32,
    kernel_idx: usize,
    symbols: &Symbols,
    group: &mut Group<'_>,
    writes: &mut Vec<u64>,
    out: &mut Vec<Diagnostic>,
) {
    let here = |stage: usize| format!("kernel {kernel_idx} block {task} stage {stage}");
    // Map-index-table bindings accumulate as stages progress (AddMap on
    // first binding, ChgMap on rebinding).
    let mut bindings: HashMap<usize, TileMap> = HashMap::new();
    for (si, stage) in block.stages.iter().enumerate() {
        for m in &stage.maps {
            let alloc_words = block.allocs.get(m.alloc.0).map_or(0, |a| a.words);
            if m.tile.local_words() > alloc_words {
                out.push(Diagnostic {
                    rule: Rule::OutOfBounds,
                    message: format!(
                        "{}: mapped tile needs {} local words but allocation {} has {}",
                        here(si),
                        m.tile.local_words(),
                        m.alloc.0,
                        alloc_words
                    ),
                });
            }
            check_tile_in_symbol(&m.tile, &here(si), symbols, out);
            if m.mode.is_mapped() {
                bindings.insert(m.slot, m.tile);
            }
        }
        for d in &stage.dmas {
            check_tile_in_symbol(&d.tile, &here(si), symbols, out);
            if d.load {
                group.access_tile(task, &d.tile, false);
            }
            if d.store {
                group.access_tile(task, &d.tile, true);
                collect_tile_words(&d.tile, writes);
            }
        }
        for op in stage.warps.iter().flatten() {
            match op {
                WarpOp::Compute(_) => {}
                WarpOp::GlobalMem { write, lanes } => {
                    for va in lanes {
                        let w = va.0 / WORD_BYTES;
                        group.access(task, w, *write);
                        if *write {
                            writes.push(w);
                        }
                    }
                }
                WarpOp::LocalMem {
                    write,
                    alloc,
                    slot,
                    lanes,
                } => {
                    let alloc_words = block.allocs.get(alloc.0).map_or(0, |a| a.words);
                    let tile = bindings.get(slot);
                    for &lane in lanes {
                        let lane = u64::from(lane);
                        let limit = tile.map_or(alloc_words, TileMap::local_words);
                        if lane >= limit {
                            out.push(Diagnostic {
                                rule: Rule::OutOfBounds,
                                message: format!(
                                    "{}: local index {lane} outside {} (size {limit} words)",
                                    here(si),
                                    if tile.is_some() {
                                        "its mapped tile"
                                    } else {
                                        "its allocation"
                                    },
                                ),
                            });
                            continue;
                        }
                        if let Some(tile) = tile {
                            // Mapped stash words are global data.
                            let va = tile.virt_of_local_offset(lane * WORD_BYTES);
                            let w = va.0 / WORD_BYTES;
                            group.access(task, w, *write);
                            if *write {
                                writes.push(w);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn lint_cpu_phase(
    cpu: &CpuPhase,
    phase_idx: usize,
    symbols: &Symbols,
    stale: &mut StaleTracker,
    out: &mut Vec<Diagnostic>,
) {
    let label = move |c: u32| format!("phase {phase_idx} core {c}");
    let mut group = Group::new(&label);
    for (c, ops) in cpu.per_core.iter().enumerate() {
        let maps = cpu.stash_maps.get(c);
        for op in ops {
            match op {
                CpuOp::Compute(_) => {}
                CpuOp::Mem { write, vaddr } => {
                    let w = vaddr.0 / WORD_BYTES;
                    group.access(c as u32, w, *write);
                    stale.cpu_access(c, w, *write, phase_idx, symbols, out);
                }
                CpuOp::StashMem { write, slot, word } => {
                    let Some(tile) = maps.and_then(|m| m.get(*slot)) else {
                        out.push(Diagnostic {
                            rule: Rule::OutOfBounds,
                            message: format!(
                                "phase {phase_idx} core {c}: StashMem slot {slot} has no \
                                 mapping in the phase's stash_maps"
                            ),
                        });
                        continue;
                    };
                    if u64::from(*word) >= tile.local_words() {
                        out.push(Diagnostic {
                            rule: Rule::OutOfBounds,
                            message: format!(
                                "phase {phase_idx} core {c}: stash index {word} outside its \
                                 mapped tile (size {} words)",
                                tile.local_words()
                            ),
                        });
                        continue;
                    }
                    let va = tile.virt_of_local_offset(u64::from(*word) * WORD_BYTES);
                    // CPU stashes self-invalidate at kernel boundaries, so
                    // they feed the race rule but not the stale tracker.
                    group.access(c as u32, va.0 / WORD_BYTES, *write);
                }
            }
        }
    }
    // Writes by one core stale other cores' cached copies.
    for (c, ops) in cpu.per_core.iter().enumerate() {
        for op in ops {
            if let CpuOp::Mem { write: true, vaddr } = op {
                stale.foreign_write(vaddr.0 / WORD_BYTES, c, phase_idx);
            }
        }
    }
    group.diagnostics(Rule::CpuRace, symbols, out);
}

fn check_tile_in_symbol(tile: &TileMap, task: &str, symbols: &Symbols, out: &mut Vec<Diagnostic>) {
    let Some((name, _)) = symbols.locate(tile.global_base().0) else {
        return;
    };
    for (va, words) in tile_field_words(tile) {
        let last = va.0 + words * WORD_BYTES - 1;
        if symbols.locate(last).map(|(n, _)| n) != Some(name) {
            out.push(Diagnostic {
                rule: Rule::OutOfBounds,
                message: format!(
                    "{task}: tile at {:#x} extends past the end of array {name}",
                    tile.global_base().0
                ),
            });
            return;
        }
    }
}

fn collect_tile_words(tile: &TileMap, out: &mut Vec<u64>) {
    for (va, words) in tile_field_words(tile) {
        for w in 0..words {
            out.push(va.0 / WORD_BYTES + w);
        }
    }
}

/// Cross-phase tracker for the CPU stale-read hazard.
///
/// Per word: the bitmask of CPU cores holding a Shared copy, the mask of
/// those copies that have since been overwritten, and who staled them.
#[derive(Debug, Default)]
struct StaleTracker {
    /// word → (shared-copy core mask, stale-copy core mask).
    words: HashMap<u64, (u64, u64)>,
    /// word → description of the last writer that staled copies.
    staler: HashMap<u64, String>,
    /// Reported (core, word) pairs, to avoid repeats.
    reported: HashSet<(usize, u64)>,
}

impl StaleTracker {
    /// A GPU kernel wrote these words: every CPU Shared copy goes stale.
    fn gpu_writes(&mut self, words: &[u64], kernel_idx: usize) {
        for &w in words {
            if let Some((shared, stale)) = self.words.get_mut(&w) {
                if *shared != 0 {
                    *stale |= *shared;
                    self.staler.insert(w, format!("kernel {kernel_idx}"));
                }
            }
        }
    }

    /// A CPU core's write stales *other* cores' copies (DeNovo revokes
    /// only the registered owner; Shared copies linger).
    fn foreign_write(&mut self, word: u64, writer: usize, phase_idx: usize) {
        if let Some((shared, stale)) = self.words.get_mut(&word) {
            let others = *shared & !(1u64 << (writer % 64));
            if others != 0 {
                *stale |= others;
                self.staler
                    .insert(word, format!("phase {phase_idx} core {writer}"));
            }
        }
    }

    fn cpu_access(
        &mut self,
        core: usize,
        word: u64,
        write: bool,
        phase_idx: usize,
        symbols: &Symbols,
        out: &mut Vec<Diagnostic>,
    ) {
        let bit = 1u64 << (core % 64);
        let entry = self.words.entry(word).or_default();
        if write {
            // The store registers: our copy is fresh again, and on a later
            // revocation it drops to Invalid (a later read re-fetches).
            entry.0 &= !bit;
            entry.1 &= !bit;
            return;
        }
        if entry.1 & bit != 0 {
            if self.reported.insert((core, word)) {
                let writer = self
                    .staler
                    .get(&word)
                    .cloned()
                    .unwrap_or_else(|| "another agent".to_string());
                out.push(Diagnostic {
                    rule: Rule::CpuStaleRead,
                    message: format!(
                        "phase {phase_idx} core {core} reads {} from its cache, but {writer} \
                         overwrote it and CPU L1s are never self-invalidated",
                        symbols.range(word, word)
                    ),
                });
            }
            return;
        }
        entry.0 |= bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::{AllocId, Kernel, LocalAlloc, MapReq, Stage, ThreadBlock};
    use stash::UsageMode;

    fn global_op(write: bool, base: u64, words: u64) -> WarpOp {
        WarpOp::GlobalMem {
            write,
            lanes: (0..words).map(|w| VAddr(base + w * 4)).collect(),
        }
    }

    fn block_with(ops: Vec<WarpOp>) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        let mut stage = Stage::new(1);
        stage.warps[0] = ops;
        tb.stages.push(stage);
        tb
    }

    fn one_kernel(blocks: Vec<ThreadBlock>) -> Program {
        Program {
            phases: vec![Phase::Gpu(Kernel { blocks })],
        }
    }

    #[test]
    fn disjoint_blocks_are_clean() {
        let p = one_kernel(vec![
            block_with(vec![global_op(true, 0x1000, 8)]),
            block_with(vec![global_op(true, 0x2000, 8)]),
        ]);
        assert!(lint_program(&p, &Symbols::new()).is_empty());
    }

    #[test]
    fn read_read_sharing_is_clean() {
        let p = one_kernel(vec![
            block_with(vec![global_op(false, 0x1000, 8)]),
            block_with(vec![global_op(false, 0x1000, 8)]),
        ]);
        assert!(lint_program(&p, &Symbols::new()).is_empty());
    }

    #[test]
    fn write_write_overlap_is_a_race() {
        let p = one_kernel(vec![
            block_with(vec![global_op(true, 0x1000, 8)]),
            block_with(vec![global_op(true, 0x1010, 8)]),
        ]);
        let diags = lint_program(&p, &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::CrossBlockRace);
        assert!(diags[0].message.contains("block 0"));
        assert!(diags[0].message.contains("block 1"));
        assert!(diags[0].message.contains("4 conflicting words"));
    }

    #[test]
    fn read_write_overlap_is_a_race_with_symbol_name() {
        let mut symbols = Symbols::new();
        symbols.add("data", VAddr(0x1000), 0x100);
        let p = one_kernel(vec![
            block_with(vec![global_op(false, 0x1000, 4)]),
            block_with(vec![global_op(true, 0x1008, 4)]),
        ]);
        let diags = lint_program(&p, &symbols);
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("data[word"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn same_block_write_is_not_a_race() {
        let p = one_kernel(vec![block_with(vec![
            global_op(true, 0x1000, 8),
            global_op(false, 0x1000, 8),
        ])]);
        assert!(lint_program(&p, &Symbols::new()).is_empty());
    }

    #[test]
    fn mapped_stash_tiles_race_like_global_accesses() {
        // Two blocks map overlapping tiles coherently and write them.
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 16, 0, 1).unwrap();
        let mut blocks = Vec::new();
        for _ in 0..2 {
            let mut tb = ThreadBlock::new();
            tb.allocs.push(LocalAlloc { words: 16 });
            let mut stage = Stage::new(1);
            stage.maps.push(MapReq {
                slot: 0,
                alloc: AllocId(0),
                tile,
                mode: UsageMode::MappedCoherent,
            });
            stage.warps[0] = vec![WarpOp::LocalMem {
                write: true,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..16).collect(),
            }];
            tb.stages.push(stage);
            blocks.push(tb);
        }
        let diags = lint_program(&one_kernel(blocks), &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::CrossBlockRace);
    }

    #[test]
    fn local_index_out_of_bounds_is_flagged() {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 8 });
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: vec![7, 8],
        }];
        tb.stages.push(stage);
        let diags = lint_program(&one_kernel(vec![tb]), &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::OutOfBounds);
        assert!(diags[0].message.contains("index 8"));
    }

    #[test]
    fn tile_larger_than_allocation_is_flagged() {
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 16, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 8 });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        tb.stages.push(stage);
        let diags = lint_program(&one_kernel(vec![tb]), &Symbols::new());
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::OutOfBounds && d.message.contains("16 local words")));
    }

    #[test]
    fn tile_past_array_end_is_flagged_with_symbols() {
        let mut symbols = Symbols::new();
        symbols.add("short", VAddr(0x4000), 32); // 8 words
        let tile = TileMap::new(VAddr(0x4000), 4, 4, 16, 0, 1).unwrap(); // 16 words
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 16 });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        tb.stages.push(stage);
        let diags = lint_program(&one_kernel(vec![tb]), &symbols);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::OutOfBounds && d.message.contains("past the end")));
    }

    #[test]
    fn cpu_cores_conflicting_in_one_phase_race() {
        let p = Program {
            phases: vec![Phase::Cpu(CpuPhase {
                per_core: vec![
                    vec![CpuOp::Mem {
                        write: true,
                        vaddr: VAddr(0x1000),
                    }],
                    vec![CpuOp::Mem {
                        write: false,
                        vaddr: VAddr(0x1000),
                    }],
                ],
                stash_maps: Vec::new(),
            })],
        };
        let diags = lint_program(&p, &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::CpuRace);
    }

    #[test]
    fn cpu_stale_read_across_gpu_kernel_is_flagged() {
        let read = CpuOp::Mem {
            write: false,
            vaddr: VAddr(0x1000),
        };
        let p = Program {
            phases: vec![
                // Phase 0: CPU core 0 caches the word (Shared).
                Phase::Cpu(CpuPhase {
                    per_core: vec![vec![read]],
                    stash_maps: Vec::new(),
                }),
                // Phase 1: a GPU kernel overwrites it.
                Phase::Gpu(Kernel {
                    blocks: vec![block_with(vec![global_op(true, 0x1000, 1)])],
                }),
                // Phase 2: the CPU re-reads its stale copy.
                Phase::Cpu(CpuPhase {
                    per_core: vec![vec![read]],
                    stash_maps: Vec::new(),
                }),
            ],
        };
        let diags = lint_program(&p, &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::CpuStaleRead);
        assert!(
            diags[0].message.contains("kernel 0"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn cpu_rewrite_clears_staleness() {
        // The CPU *writes* first (Registered), so the GPU's later write
        // revokes the copy and the final read re-fetches fresh data.
        let p = Program {
            phases: vec![
                Phase::Cpu(CpuPhase {
                    per_core: vec![vec![CpuOp::Mem {
                        write: true,
                        vaddr: VAddr(0x1000),
                    }]],
                    stash_maps: Vec::new(),
                }),
                Phase::Gpu(Kernel {
                    blocks: vec![block_with(vec![global_op(true, 0x1000, 1)])],
                }),
                Phase::Cpu(CpuPhase {
                    per_core: vec![vec![CpuOp::Mem {
                        write: false,
                        vaddr: VAddr(0x1000),
                    }]],
                    stash_maps: Vec::new(),
                }),
            ],
        };
        assert!(lint_program(&p, &Symbols::new()).is_empty());
    }

    #[test]
    fn dma_store_tiles_conflict_across_blocks() {
        let tile = TileMap::new(VAddr(0x8000), 4, 4, 8, 0, 1).unwrap();
        let mut blocks = Vec::new();
        for _ in 0..2 {
            let mut tb = ThreadBlock::new();
            tb.allocs.push(LocalAlloc { words: 8 });
            let mut stage = Stage::new(1);
            stage.dmas.push(gpu::program::DmaReq {
                alloc: AllocId(0),
                tile,
                load: false,
                store: true,
            });
            tb.stages.push(stage);
            blocks.push(tb);
        }
        let diags = lint_program(&one_kernel(blocks), &Symbols::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::CrossBlockRace);
    }
}
