//! A D2MA-style DMA engine for scratchpad preloading (the paper's
//! strongest baseline, `ScratchGD`).
//!
//! Following the paper's adaptation of D2MA (Jamshidi et al., PACT 2014):
//! the engine transfers a strided tile directly between global memory and
//! the scratchpad, bypassing the L1 (no pollution); it supports stores as
//! well as loads; and it blocks memory requests at *core* granularity —
//! every thread block on the CU waits until the whole transfer completes.
//! Unlike the stash it must transfer *every* mapped element whether or not
//! the program will access it, and it cannot preserve data across kernels.
//!
//! This module produces the transfer *plan*; the memory-system
//! orchestrator executes it (traffic, latency, energy). The paper
//! "conservatively do\[es\] not charge additional energy for the DMA engine
//! that issues the requests" — we do the same: only the scratchpad
//! accesses and network/L2 traffic of the transfer are charged.

use crate::addr::{VAddr, WORD_BYTES};
use crate::tile::TileMap;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// Preload: global memory → scratchpad (before the kernel body).
    GlobalToScratch,
    /// Writeback: scratchpad → global memory (after the kernel body).
    ScratchToGlobal,
}

/// A planned DMA transfer of one mapped tile.
///
/// # Example
///
/// ```
/// use mem::addr::VAddr;
/// use mem::dma::{DmaDirection, DmaTransfer};
/// use mem::tile::TileMap;
///
/// let tile = TileMap::new(VAddr(0x1000), 4, 16, 8, 0, 1).unwrap();
/// let dma = DmaTransfer::new(tile, DmaDirection::GlobalToScratch);
/// assert_eq!(dma.word_count(), 8);
/// assert_eq!(dma.word_vaddrs().count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    tile: TileMap,
    direction: DmaDirection,
}

impl DmaTransfer {
    /// Plans a transfer of `tile` in `direction`.
    pub fn new(tile: TileMap, direction: DmaDirection) -> Self {
        Self { tile, direction }
    }

    /// The mapped tile.
    pub fn tile(&self) -> &TileMap {
        &self.tile
    }

    /// Transfer direction.
    pub fn direction(&self) -> DmaDirection {
        self.direction
    }

    /// Total words moved: the *entire* tile, accessed or not — the
    /// on-demand advantage the stash holds over DMA (§6.2).
    pub fn word_count(&self) -> u64 {
        self.tile.local_words()
    }

    /// Every global word address the transfer touches, in local order.
    pub fn word_vaddrs(&self) -> impl Iterator<Item = VAddr> + '_ {
        (0..self.word_count()).map(move |w| {
            self.tile.virt_of_local_offset(w * WORD_BYTES)
            // virt_of_local_offset is per-byte; w*4 is word-aligned.
        })
    }

    /// Splits the transfer's word addresses at a truncation point: the
    /// words that were delivered before the fault, and the lost tail the
    /// engine's length check (NACK + resend) or — without resilience —
    /// nothing at all will cover. `delivered` is clamped to the word
    /// count, so an intact transfer has an empty tail.
    pub fn split_at_truncation(&self, delivered: u64) -> (Vec<VAddr>, Vec<VAddr>) {
        let keep = delivered.min(self.word_count()) as usize;
        let mut addrs: Vec<VAddr> = self.word_vaddrs().collect();
        let tail = addrs.split_off(keep);
        (addrs, tail)
    }

    /// Scratchpad accesses the transfer itself performs (one write per
    /// word on preload, one read per word on writeback) — charged at
    /// scratchpad access energy, on top of the program's own accesses.
    pub fn scratchpad_accesses(&self) -> u64 {
        self.word_count()
    }

    /// Instruction overhead of initiating the transfer: D2MA replaces the
    /// per-element copy loop with a single special instruction per warp
    /// that configures the engine.
    pub fn setup_instructions(&self, warps: u64) -> u64 {
        warps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> TileMap {
        // 2 rows × 4 objects, 8-byte field of 32-byte objects, 256-B stride.
        TileMap::new(VAddr(0x8000), 8, 32, 4, 256, 2).unwrap()
    }

    #[test]
    fn word_count_covers_whole_tile() {
        let dma = DmaTransfer::new(tile(), DmaDirection::GlobalToScratch);
        // 8 elements × 2 words each.
        assert_eq!(dma.word_count(), 16);
        assert_eq!(dma.scratchpad_accesses(), 16);
    }

    #[test]
    fn vaddrs_follow_the_stride() {
        let dma = DmaTransfer::new(tile(), DmaDirection::GlobalToScratch);
        let addrs: Vec<VAddr> = dma.word_vaddrs().collect();
        assert_eq!(addrs[0], VAddr(0x8000));
        assert_eq!(addrs[1], VAddr(0x8004)); // second word of field 0
        assert_eq!(addrs[2], VAddr(0x8020)); // next object
        assert_eq!(addrs[8], VAddr(0x8100)); // next row, 256 B away
    }

    #[test]
    fn both_directions_move_the_same_words() {
        let load = DmaTransfer::new(tile(), DmaDirection::GlobalToScratch);
        let store = DmaTransfer::new(tile(), DmaDirection::ScratchToGlobal);
        assert_eq!(
            load.word_vaddrs().collect::<Vec<_>>(),
            store.word_vaddrs().collect::<Vec<_>>()
        );
        assert_ne!(load.direction(), store.direction());
    }

    #[test]
    fn truncation_split_preserves_order_and_total() {
        let dma = DmaTransfer::new(tile(), DmaDirection::GlobalToScratch);
        let (head, tail) = dma.split_at_truncation(5);
        assert_eq!(head.len(), 5);
        assert_eq!(tail.len(), 11);
        let mut joined = head.clone();
        joined.extend(&tail);
        assert_eq!(joined, dma.word_vaddrs().collect::<Vec<_>>());
        // Clamped: an intact transfer has no tail.
        let (full, none) = dma.split_at_truncation(99);
        assert_eq!(full.len(), 16);
        assert!(none.is_empty());
    }

    #[test]
    fn setup_cost_is_per_warp() {
        let dma = DmaTransfer::new(tile(), DmaDirection::GlobalToScratch);
        assert_eq!(dma.setup_instructions(8), 8);
    }
}
