//! The shared NUCA L2 / registry (DeNovo's directory-free "LLC").
//!
//! Under DeNovo the LLC doubles as the *registry*: for every word it
//! either holds valid data or records which core has the word Registered —
//! the owner ID is kept in the word's own data-array slot, so tracking
//! costs no extra storage (§4.3). For stash owners it additionally records
//! the owner's stash-map index so a remote request can be translated back
//! to a stash location (§4.3, feature 3).
//!
//! Capacity note: the simulated L2 is 4 MB while the paper's workloads
//! touch well under that, so this model keeps every touched line resident
//! (first touch still counts as a memory fetch). L2 *evictions* therefore
//! never occur, which matches the paper's configurations.

use crate::addr::{LineAddr, WORD_BYTES};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Identifies a core (CPU or GPU CU) for registration tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Who holds a word registered, and — for stash owners — through which
/// stash-map entry (so remote requests can find the stash location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Registration {
    /// Registered in the owner's L1 cache.
    Cache(CoreId),
    /// Registered in the owner's stash via stash-map entry `map_index`.
    Stash {
        /// The owning core.
        core: CoreId,
        /// Index into the owner's stash-map (stored at the LLC alongside
        /// the core ID, §4.3).
        map_index: u8,
    },
}

impl Registration {
    /// The owning core, regardless of which structure holds the word.
    pub fn core(self) -> CoreId {
        match self {
            Registration::Cache(c) => c,
            Registration::Stash { core, .. } => core,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WordTag {
    Valid,
    Registered(Registration),
}

/// Slot-table sentinel for "line not resident".
const EMPTY: u32 = u32::MAX;

/// Outcome of a load request reaching the home L2 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcLoadOutcome {
    /// The LLC supplies the data; `from_memory` is true if the line had to
    /// be fetched from DRAM first.
    Data {
        /// Whether DRAM was accessed.
        from_memory: bool,
    },
    /// Another core holds the only up-to-date copy; the request must be
    /// forwarded to it.
    Forward(Registration),
}

/// Outcome of a registration (store-miss) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterOutcome {
    /// The previous owner, if the word was registered elsewhere (that copy
    /// must be invalidated/downgraded by the orchestrator).
    pub previous: Option<Registration>,
    /// Whether DRAM was accessed to bring the line in first.
    pub from_memory: bool,
}

/// The banked shared L2 + registry.
///
/// # Example
///
/// ```
/// use mem::addr::LineAddr;
/// use mem::llc::{CoreId, Llc, LlcLoadOutcome, Registration};
///
/// let mut llc = Llc::new(16, 64);
/// let line = LineAddr(0x4000);
/// // First load fetches from memory, second hits in the L2.
/// assert_eq!(llc.load_word(line, 0), LlcLoadOutcome::Data { from_memory: true });
/// assert_eq!(llc.load_word(line, 0), LlcLoadOutcome::Data { from_memory: false });
/// // A store registers the word; a later load is forwarded to the owner.
/// llc.register_word(line, 0, Registration::Cache(CoreId(2)));
/// assert!(matches!(llc.load_word(line, 0), LlcLoadOutcome::Forward(_)));
/// ```
#[derive(Debug, Clone, Default)]
struct Tables {
    /// Line index (`addr / line_bytes`) → word-arena slot, [`EMPTY`] when
    /// the line is not resident. Physical frames are handed out densely
    /// from a low base, so this direct-indexed table stays proportional
    /// to the touched footprint; a lookup is one bounds check + one array
    /// read — no hashing on the load/store path.
    slots: Vec<u32>,
    /// Word-tag arena: slot `s` owns the `words_per_line` tags starting
    /// at `s * words_per_line`. Lines are never evicted, so slots are
    /// append-only.
    words: Vec<WordTag>,
}

#[derive(Debug, Clone)]
pub struct Llc {
    banks: usize,
    line_bytes: u64,
    words_per_line: usize,
    /// Consecutive lines mapped to the same bank before moving to the
    /// next (1 = fine line interleaving, the paper's configuration).
    interleave_lines: u64,
    /// The slot table and word-tag arena. The master owns its tables
    /// (refcount 1, so `Arc::make_mut` mutates in place for free); a
    /// forked shard shares them read-only and writes to `overlay`
    /// instead, which makes [`Llc::fork`] a refcount bump rather than a
    /// copy of the whole arena.
    tables: Arc<Tables>,
    /// Shard mode (`Some` only after [`Llc::fork`]): the shard's private
    /// copies of every line it touched, keyed by line index. Reads check
    /// here first and fall through to the shared `tables`; writes land
    /// here, so the base snapshot is never copied and the shard's cost
    /// is proportional to its own footprint.
    overlay: Option<BTreeMap<usize, Box<[WordTag]>>>,
    /// Number of resident lines (base lines plus overlay-only lines).
    resident: usize,
    dram_line_fetches: u64,
    /// Words whose resident data is corrupt (fault injection's ground
    /// truth). Ordered so diagnostics and scrubs are deterministic.
    corrupt: BTreeSet<(LineAddr, usize)>,
}

impl Llc {
    /// Creates an LLC with `banks` banks and `line_bytes` lines,
    /// interleaved line-by-line (the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or the line is not word-aligned.
    pub fn new(banks: usize, line_bytes: usize) -> Self {
        Self::with_interleave(banks, line_bytes, 1)
    }

    /// Creates an LLC whose bank map moves to the next bank only every
    /// `interleave_lines` consecutive lines (coarser-grained NUCA
    /// interleaving — a DSE dimension).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the line is not word-aligned.
    pub fn with_interleave(banks: usize, line_bytes: usize, interleave_lines: u64) -> Self {
        assert!(banks > 0 && line_bytes > 0 && interleave_lines > 0);
        assert_eq!(line_bytes as u64 % WORD_BYTES, 0);
        Self {
            banks,
            line_bytes: line_bytes as u64,
            words_per_line: line_bytes / WORD_BYTES as usize,
            interleave_lines,
            tables: Arc::new(Tables::default()),
            overlay: None,
            resident: 0,
            dram_line_fetches: 0,
            corrupt: BTreeSet::new(),
        }
    }

    /// Forks a copy-on-write view for a per-CU shard: the slot table and
    /// word arena are shared (a refcount bump), and every line the shard
    /// touches gets a private overlay copy on first access. The master
    /// keeps sole ownership of its tables once the shards are dropped,
    /// so its own mutation path stays in-place.
    #[must_use]
    pub fn fork(&self) -> Llc {
        Llc {
            banks: self.banks,
            line_bytes: self.line_bytes,
            words_per_line: self.words_per_line,
            interleave_lines: self.interleave_lines,
            tables: Arc::clone(&self.tables),
            overlay: Some(BTreeMap::new()),
            resident: self.resident,
            dram_line_fetches: self.dram_line_fetches,
            corrupt: self.corrupt.clone(),
        }
    }

    /// The home bank of a line (groups of `interleave_lines` consecutive
    /// lines interleave across banks).
    pub fn bank_of(&self, line: LineAddr) -> usize {
        ((line.0 / self.line_bytes / self.interleave_lines) % self.banks as u64) as usize
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Total DRAM line fetches so far.
    pub fn dram_line_fetches(&self) -> u64 {
        self.dram_line_fetches
    }

    /// Overrides the DRAM fetch tally. Used by the parallel-kernel merge:
    /// replaying staged requests re-ensures residency without charging
    /// fetches twice, so the merged tally is set from the per-shard sums.
    pub fn set_dram_line_fetches(&mut self, fetches: u64) {
        self.dram_line_fetches = fetches;
    }

    fn line_index(&self, line: LineAddr) -> usize {
        (line.0 / self.line_bytes) as usize
    }

    /// The base tables' tags for a line, `None` when not resident there.
    #[inline]
    fn base_words(&self, idx: usize) -> Option<&[WordTag]> {
        let &slot = self.tables.slots.get(idx)?;
        if slot == EMPTY {
            return None;
        }
        let base = slot as usize * self.words_per_line;
        Some(&self.tables.words[base..base + self.words_per_line])
    }

    /// Resident-line lookup on the read path: `None` when not resident.
    /// A shard's overlay shadows the shared base tables.
    #[inline]
    fn line_words(&self, line: LineAddr) -> Option<&[WordTag]> {
        let idx = self.line_index(line);
        if let Some(tags) = self.overlay.as_ref().and_then(|ov| ov.get(&idx)) {
            return Some(tags);
        }
        self.base_words(idx)
    }

    fn ensure(&mut self, line: LineAddr) -> (bool, &mut [WordTag]) {
        let idx = self.line_index(line);
        let wpl = self.words_per_line;
        let Self {
            tables,
            overlay,
            resident,
            dram_line_fetches,
            ..
        } = self;
        if let Some(ov) = overlay.as_mut() {
            // Shard mode: materialize a private copy of the line on first
            // touch — from the shared base if resident there, otherwise a
            // fresh all-Valid line, which is the fetch.
            let mut fetched = false;
            let tags = ov.entry(idx).or_insert_with(|| {
                let base: Option<Box<[WordTag]>> = tables
                    .slots
                    .get(idx)
                    .copied()
                    .filter(|&slot| slot != EMPTY)
                    .map(|slot| {
                        let b = slot as usize * wpl;
                        tables.words[b..b + wpl].into()
                    });
                base.unwrap_or_else(|| {
                    fetched = true;
                    vec![WordTag::Valid; wpl].into_boxed_slice()
                })
            });
            if fetched {
                *resident += 1;
                *dram_line_fetches += 1;
            }
            return (fetched, tags);
        }
        let t = Arc::make_mut(tables);
        if idx >= t.slots.len() {
            t.slots.resize(idx + 1, EMPTY);
        }
        let mut fetched = false;
        if t.slots[idx] == EMPTY {
            let slot = u32::try_from(t.words.len() / wpl).expect("arena slot fits u32");
            t.words.resize(t.words.len() + wpl, WordTag::Valid);
            t.slots[idx] = slot;
            *resident += 1;
            *dram_line_fetches += 1;
            fetched = true;
        }
        let base = t.slots[idx] as usize * wpl;
        (fetched, &mut t.words[base..base + wpl])
    }

    /// Visits every resident line with its tags, in ascending address
    /// order (the slot table is indexed by line address, so index order
    /// *is* address order). In shard mode the overlay's private copies
    /// shadow the base tables, and overlay-only lines — lines the shard
    /// fetched itself — are merged in at their index position.
    fn for_each_resident(&self, mut f: impl FnMut(LineAddr, &[WordTag])) {
        let line_of = |idx: usize| LineAddr(idx as u64 * self.line_bytes);
        let mut ov = self.overlay.as_ref().map(|m| m.iter().peekable());
        for (idx, &slot) in self.tables.slots.iter().enumerate() {
            let mut shadowed = false;
            if let Some(it) = ov.as_mut() {
                // Overlay-only lines below this index come first.
                while it.peek().is_some_and(|&(&oidx, _)| oidx < idx) {
                    let (&oidx, tags) = it.next().expect("peeked");
                    f(line_of(oidx), tags);
                }
                // The shard's private copy shadows the base line.
                if it.peek().is_some_and(|&(&oidx, _)| oidx == idx) {
                    let (_, tags) = it.next().expect("peeked");
                    f(line_of(idx), tags);
                    shadowed = true;
                }
            }
            if !shadowed && slot != EMPTY {
                let base = slot as usize * self.words_per_line;
                f(
                    line_of(idx),
                    &self.tables.words[base..base + self.words_per_line],
                );
            }
        }
        if let Some(it) = ov.as_mut() {
            for (&oidx, tags) in it {
                f(line_of(oidx), tags);
            }
        }
    }

    /// A load request for one word arriving at the home bank.
    pub fn load_word(&mut self, line: LineAddr, word: usize) -> LlcLoadOutcome {
        assert!(word < self.words_per_line);
        let (from_memory, tags) = self.ensure(line);
        match tags[word] {
            WordTag::Valid => LlcLoadOutcome::Data { from_memory },
            WordTag::Registered(r) => LlcLoadOutcome::Forward(r),
        }
    }

    /// A registration (store-miss) request: `new` becomes the word's owner.
    pub fn register_word(
        &mut self,
        line: LineAddr,
        word: usize,
        new: Registration,
    ) -> RegisterOutcome {
        assert!(word < self.words_per_line);
        let (from_memory, tags) = self.ensure(line);
        let previous = match tags[word] {
            WordTag::Registered(r) if r != new => Some(r),
            _ => None,
        };
        tags[word] = WordTag::Registered(new);
        RegisterOutcome {
            previous,
            from_memory,
        }
    }

    /// A writeback of one word from `owner`: clears the registration (if it
    /// still names `owner`) and marks the word Valid. Returns `true` if a
    /// matching registration was cleared — a stale writeback (the word was
    /// re-registered elsewhere meanwhile) returns `false` and is dropped.
    pub fn writeback_word(&mut self, line: LineAddr, word: usize, owner: CoreId) -> bool {
        assert!(word < self.words_per_line);
        let (_, tags) = self.ensure(line);
        match tags[word] {
            WordTag::Registered(r) if r.core() == owner => {
                tags[word] = WordTag::Valid;
                true
            }
            _ => false,
        }
    }

    /// A write-through store of one word (the DMA engine's scratchpad →
    /// global writeback path, which deposits data directly at the LLC):
    /// marks the word Valid and returns any registration that had to be
    /// revoked (the orchestrator invalidates that copy).
    pub fn store_through(&mut self, line: LineAddr, word: usize) -> Option<Registration> {
        assert!(word < self.words_per_line);
        let (_, tags) = self.ensure(line);
        let previous = match tags[word] {
            WordTag::Registered(r) => Some(r),
            WordTag::Valid => None,
        };
        tags[word] = WordTag::Valid;
        previous
    }

    /// For a full line fill: ensures the line is resident and returns
    /// `(from_memory, skip)` where `skip` lists word indices registered by
    /// cores *other than* `requester` (the LLC cannot supply those).
    pub fn line_fill(&mut self, line: LineAddr, requester: CoreId) -> (bool, Vec<usize>) {
        let (from_memory, tags) = self.ensure(line);
        let skip = tags
            .iter()
            .enumerate()
            .filter(|(_, w)| matches!(w, WordTag::Registered(r) if r.core() != requester))
            .map(|(i, _)| i)
            .collect();
        (from_memory, skip)
    }

    /// The current registration of a word, if any (diagnostic/registry view).
    pub fn registration(&self, line: LineAddr, word: usize) -> Option<Registration> {
        self.line_words(line).and_then(|tags| match tags[word] {
            WordTag::Registered(r) => Some(r),
            WordTag::Valid => None,
        })
    }

    /// Number of words currently registered to `core` (diagnostics; the
    /// papershape tests use this to assert lazy-writeback behaviour).
    pub fn words_registered_to(&self, core: CoreId) -> usize {
        let mut n = 0;
        self.for_each_resident(|_, tags| {
            n += tags
                .iter()
                .filter(|w| matches!(w, WordTag::Registered(r) if r.core() == core))
                .count();
        });
        n
    }

    /// Every currently-registered word, as `(line, word index, owner)`,
    /// sorted by address — the registry side of the invariant checks (the
    /// runtime oracle walks this to confirm each registration names a core
    /// that really holds the word Registered). The slot table is indexed
    /// by line address, so the walk is sorted for free.
    pub fn registered_words(&self) -> Vec<(LineAddr, usize, Registration)> {
        let mut out = Vec::new();
        self.for_each_resident(|line, tags| {
            for (i, w) in tags.iter().enumerate() {
                if let WordTag::Registered(r) = w {
                    out.push((line, i, *r));
                }
            }
        });
        out
    }

    /// Every resident line address, sorted — the residency side of the
    /// architectural-state digest (a truncated DMA that never filled a
    /// line shows up here).
    pub fn resident_line_addrs(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        self.for_each_resident(|line, _| out.push(line));
        out
    }

    // ------------------------------------------------------------------
    // Fault injection: corrupt-word ground truth
    // ------------------------------------------------------------------
    //
    // The transaction-level model carries no data values, so a "flipped
    // word" is tracked as membership in a corrupt set. Reads with the
    // parity model check it (detect + correct), overwrites clear it
    // silently, and the end-of-run scrub sweeps the remainder. Whatever
    // is still in the set at the end of a run escaped every check.

    /// Marks a resident word's data corrupt (a fault injector flipped it).
    pub fn corrupt_word(&mut self, line: LineAddr, word: usize) {
        assert!(word < self.words_per_line);
        self.corrupt.insert((line, word));
    }

    /// An overwriting store repairs corruption without noticing it.
    /// Returns `true` if the word was corrupt.
    pub fn clear_corrupt(&mut self, line: LineAddr, word: usize) -> bool {
        self.corrupt.remove(&(line, word))
    }

    /// A parity-checked read of the word: detects (and corrects) any
    /// corruption. Returns `true` if corruption was found.
    pub fn check_parity(&mut self, line: LineAddr, word: usize) -> bool {
        self.corrupt.remove(&(line, word))
    }

    /// Number of words currently corrupt (0 on a clean or fully-scrubbed
    /// LLC).
    pub fn corrupt_word_count(&self) -> usize {
        self.corrupt.len()
    }

    /// End-of-run scrub: detects and clears every remaining corrupt
    /// word, returning how many there were.
    pub fn scrub(&mut self) -> usize {
        let n = self.corrupt.len();
        self.corrupt.clear();
        n
    }

    /// Serializes the full LLC: geometry, slot table, word-tag arena,
    /// residency/fetch accounting, and the corrupt-word set.
    ///
    /// # Panics
    ///
    /// Panics if called on a forked shard (checkpoints are taken at
    /// kernel barriers, where every shard has been absorbed and only the
    /// master LLC exists).
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        assert!(
            self.overlay.is_none(),
            "LLC snapshot requires the quiescent master, not a forked shard"
        );
        w.put_usize(self.banks);
        w.put_u64(self.line_bytes);
        w.put_u64(self.interleave_lines);
        w.put_usize(self.tables.slots.len());
        for &slot in &self.tables.slots {
            w.put_u32(slot);
        }
        w.put_usize(self.tables.words.len());
        for tag in &self.tables.words {
            match tag {
                WordTag::Valid => w.put_u8(0),
                WordTag::Registered(Registration::Cache(core)) => {
                    w.put_u8(1);
                    w.put_usize(core.0);
                }
                WordTag::Registered(Registration::Stash { core, map_index }) => {
                    w.put_u8(2);
                    w.put_usize(core.0);
                    w.put_u8(*map_index);
                }
            }
        }
        w.put_usize(self.resident);
        w.put_u64(self.dram_line_fetches);
        w.put_usize(self.corrupt.len());
        for (line, word) in &self.corrupt {
            w.put_u64(line.0);
            w.put_usize(*word);
        }
    }

    /// Restores an LLC written by [`Llc::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let corrupt_err = |detail: String| sim::SimError::CheckpointCorrupt {
            what: "llc",
            detail,
        };
        let banks = r.take_usize()?;
        let line_bytes = r.take_u64()?;
        let interleave_lines = r.take_u64()?;
        if banks == 0 || line_bytes == 0 || line_bytes % WORD_BYTES != 0 || interleave_lines == 0 {
            return Err(corrupt_err(format!(
                "invalid geometry: banks {banks}, line {line_bytes}, interleave {interleave_lines}"
            )));
        }
        let words_per_line = (line_bytes / WORD_BYTES) as usize;
        let n_slots = r.take_usize()?;
        let mut slots = Vec::with_capacity(n_slots.min(1 << 24));
        for _ in 0..n_slots {
            slots.push(r.take_u32()?);
        }
        let n_words = r.take_usize()?;
        if !n_words.is_multiple_of(words_per_line) {
            return Err(corrupt_err(format!(
                "word arena length {n_words} is not a multiple of {words_per_line}"
            )));
        }
        let arena_slots = n_words / words_per_line;
        let mut words = Vec::with_capacity(n_words.min(1 << 26));
        for _ in 0..n_words {
            words.push(match r.take_u8()? {
                0 => WordTag::Valid,
                1 => WordTag::Registered(Registration::Cache(CoreId(r.take_usize()?))),
                2 => WordTag::Registered(Registration::Stash {
                    core: CoreId(r.take_usize()?),
                    map_index: r.take_u8()?,
                }),
                v => return Err(corrupt_err(format!("unknown word tag code {v}"))),
            });
        }
        for (idx, &slot) in slots.iter().enumerate() {
            if slot != EMPTY && slot as usize >= arena_slots {
                return Err(corrupt_err(format!(
                    "slot table entry {idx} points past the word arena ({slot} >= {arena_slots})"
                )));
            }
        }
        let resident = r.take_usize()?;
        let dram_line_fetches = r.take_u64()?;
        let n_corrupt = r.take_usize()?;
        let mut corrupt = BTreeSet::new();
        for _ in 0..n_corrupt {
            let line = LineAddr(r.take_u64()?);
            let word = r.take_usize()?;
            if word >= words_per_line {
                return Err(corrupt_err(format!(
                    "corrupt-set word index {word} exceeds words per line"
                )));
            }
            corrupt.insert((line, word));
        }
        Ok(Self {
            banks,
            line_bytes,
            words_per_line,
            interleave_lines,
            tables: Arc::new(Tables { slots, words }),
            overlay: None,
            resident,
            dram_line_fetches,
            corrupt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc() -> Llc {
        Llc::new(16, 64)
    }

    #[test]
    fn bank_interleaving_covers_all_banks() {
        let l = llc();
        let mut seen = [false; 16];
        for i in 0..16 {
            seen[l.bank_of(LineAddr(i * 64))] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn coarse_interleave_groups_consecutive_lines() {
        let l = Llc::with_interleave(4, 64, 4);
        // Four consecutive lines share a bank, then the map advances.
        for group in 0..8u64 {
            for i in 0..4u64 {
                let line = LineAddr((group * 4 + i) * 64);
                assert_eq!(l.bank_of(line), (group % 4) as usize);
            }
        }
        // Interleave 1 reproduces the fine-grained default map.
        let fine = Llc::with_interleave(4, 64, 1);
        for i in 0..16u64 {
            assert_eq!(
                fine.bank_of(LineAddr(i * 64)),
                Llc::new(4, 64).bank_of(LineAddr(i * 64))
            );
        }
    }

    #[test]
    fn corruption_is_tracked_until_checked_or_scrubbed() {
        let mut l = llc();
        let line = LineAddr(0x40);
        l.load_word(line, 0);
        l.corrupt_word(line, 1);
        l.corrupt_word(line, 2);
        l.corrupt_word(line, 3);
        assert_eq!(l.corrupt_word_count(), 3);
        // A parity read detects and corrects.
        assert!(l.check_parity(line, 1));
        assert!(!l.check_parity(line, 1), "already corrected");
        // An overwrite silently repairs.
        assert!(l.clear_corrupt(line, 2));
        // The scrub sweeps what is left.
        assert_eq!(l.scrub(), 1);
        assert_eq!(l.corrupt_word_count(), 0);
    }

    #[test]
    fn resident_lines_are_sorted_and_complete() {
        let mut l = llc();
        l.load_word(LineAddr(0xc0), 0);
        l.load_word(LineAddr(0x40), 0);
        assert_eq!(
            l.resident_line_addrs(),
            vec![LineAddr(0x40), LineAddr(0xc0)]
        );
    }

    #[test]
    fn first_touch_fetches_from_memory_once() {
        let mut l = llc();
        let line = LineAddr(0x80);
        assert_eq!(
            l.load_word(line, 3),
            LlcLoadOutcome::Data { from_memory: true }
        );
        assert_eq!(
            l.load_word(line, 4),
            LlcLoadOutcome::Data { from_memory: false }
        );
        assert_eq!(l.dram_line_fetches(), 1);
    }

    #[test]
    fn registration_then_forward() {
        let mut l = llc();
        let line = LineAddr(0x0);
        let owner = Registration::Stash {
            core: CoreId(1),
            map_index: 7,
        };
        let out = l.register_word(line, 5, owner);
        assert_eq!(out.previous, None);
        assert!(out.from_memory);
        match l.load_word(line, 5) {
            LlcLoadOutcome::Forward(r) => {
                assert_eq!(r, owner);
                assert_eq!(r.core(), CoreId(1));
            }
            other => panic!("expected forward, got {other:?}"),
        }
        // Other words of the line are still served by the LLC.
        assert_eq!(
            l.load_word(line, 6),
            LlcLoadOutcome::Data { from_memory: false }
        );
    }

    #[test]
    fn re_registration_reports_previous_owner() {
        let mut l = llc();
        let line = LineAddr(0x40);
        l.register_word(line, 0, Registration::Cache(CoreId(1)));
        let out = l.register_word(line, 0, Registration::Cache(CoreId(2)));
        assert_eq!(out.previous, Some(Registration::Cache(CoreId(1))));
        // Same owner re-registering is not a change.
        let out = l.register_word(line, 0, Registration::Cache(CoreId(2)));
        assert_eq!(out.previous, None);
    }

    #[test]
    fn writeback_clears_matching_registration_only() {
        let mut l = llc();
        let line = LineAddr(0x40);
        l.register_word(line, 2, Registration::Cache(CoreId(3)));
        // A stale writeback from someone else is dropped.
        assert!(!l.writeback_word(line, 2, CoreId(9)));
        assert!(l.registration(line, 2).is_some());
        // The owner's writeback clears it.
        assert!(l.writeback_word(line, 2, CoreId(3)));
        assert_eq!(l.registration(line, 2), None);
        assert_eq!(
            l.load_word(line, 2),
            LlcLoadOutcome::Data { from_memory: false }
        );
    }

    #[test]
    fn line_fill_skips_other_cores_words() {
        let mut l = llc();
        let line = LineAddr(0xC0);
        l.register_word(line, 1, Registration::Cache(CoreId(1)));
        l.register_word(line, 9, Registration::Cache(CoreId(2)));
        let (from_memory, skip) = l.line_fill(line, CoreId(1));
        assert!(!from_memory); // register_word already fetched it
        assert_eq!(skip, vec![9]); // own registration is not skipped
    }

    #[test]
    fn store_through_revokes_registration() {
        let mut l = llc();
        let line = LineAddr(0x100);
        l.register_word(line, 0, Registration::Cache(CoreId(4)));
        assert_eq!(
            l.store_through(line, 0),
            Some(Registration::Cache(CoreId(4)))
        );
        assert_eq!(l.store_through(line, 0), None);
        assert_eq!(
            l.load_word(line, 0),
            LlcLoadOutcome::Data { from_memory: false }
        );
    }

    #[test]
    fn evict_while_registered_transfers_cleanly() {
        // Registration transfer while the old owner's eviction writeback is
        // in flight: core 1 owns the word, core 2 registers (revoking 1),
        // and only *then* does core 1's eviction writeback arrive. The
        // stale writeback must be dropped, leaving core 2 the owner.
        let mut l = llc();
        let line = LineAddr(0x200);
        l.register_word(line, 0, Registration::Cache(CoreId(1)));
        let out = l.register_word(line, 0, Registration::Cache(CoreId(2)));
        assert_eq!(out.previous, Some(Registration::Cache(CoreId(1))));
        // Core 1's late eviction writeback: dropped, registry untouched.
        assert!(!l.writeback_word(line, 0, CoreId(1)));
        assert_eq!(
            l.registration(line, 0),
            Some(Registration::Cache(CoreId(2)))
        );
        // Loads still forward to the real owner.
        assert!(matches!(l.load_word(line, 0), LlcLoadOutcome::Forward(r)
            if r.core() == CoreId(2)));
    }

    #[test]
    fn re_register_after_owner_writeback_starts_fresh() {
        // Owner writes back (word becomes Valid at the LLC), then the same
        // core stores again: the new registration must report no previous
        // owner — the transfer protocol must not see a phantom old copy.
        let mut l = llc();
        let line = LineAddr(0x240);
        l.register_word(line, 3, Registration::Cache(CoreId(7)));
        assert!(l.writeback_word(line, 3, CoreId(7)));
        assert_eq!(l.registration(line, 3), None);
        let out = l.register_word(line, 3, Registration::Cache(CoreId(7)));
        assert_eq!(out.previous, None);
        assert!(!out.from_memory); // line stayed resident across the cycle
        assert_eq!(
            l.registration(line, 3),
            Some(Registration::Cache(CoreId(7)))
        );
    }

    #[test]
    fn registered_words_enumerates_sorted_registry() {
        let mut l = llc();
        l.register_word(LineAddr(0x80), 2, Registration::Cache(CoreId(1)));
        l.register_word(
            LineAddr(0x40),
            5,
            Registration::Stash {
                core: CoreId(2),
                map_index: 1,
            },
        );
        l.register_word(LineAddr(0x40), 1, Registration::Cache(CoreId(3)));
        // A writeback removes its entry from the enumeration.
        l.register_word(LineAddr(0xC0), 0, Registration::Cache(CoreId(4)));
        l.writeback_word(LineAddr(0xC0), 0, CoreId(4));
        assert_eq!(
            l.registered_words(),
            vec![
                (LineAddr(0x40), 1, Registration::Cache(CoreId(3))),
                (
                    LineAddr(0x40),
                    5,
                    Registration::Stash {
                        core: CoreId(2),
                        map_index: 1
                    }
                ),
                (LineAddr(0x80), 2, Registration::Cache(CoreId(1))),
            ]
        );
    }

    #[test]
    fn llc_round_trips_through_snapshot() {
        let mut l = Llc::with_interleave(8, 64, 2);
        l.load_word(LineAddr(0x40), 0);
        l.register_word(LineAddr(0x80), 2, Registration::Cache(CoreId(1)));
        l.register_word(
            LineAddr(0xC0),
            5,
            Registration::Stash {
                core: CoreId(3),
                map_index: 2,
            },
        );
        l.corrupt_word(LineAddr(0x40), 1);
        let mut w = sim::snapshot::Writer::new();
        l.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "llc");
        let back = Llc::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.registered_words(), l.registered_words());
        assert_eq!(back.resident_line_addrs(), l.resident_line_addrs());
        assert_eq!(back.dram_line_fetches(), l.dram_line_fetches());
        assert_eq!(back.corrupt_word_count(), l.corrupt_word_count());
        assert_eq!(back.banks(), l.banks());
        assert_eq!(back.bank_of(LineAddr(0x200)), l.bank_of(LineAddr(0x200)));
    }

    #[test]
    fn llc_load_rejects_dangling_slot() {
        let mut l = Llc::new(4, 64);
        l.load_word(LineAddr(0x0), 0);
        let mut w = sim::snapshot::Writer::new();
        l.save(&mut w);
        let mut bytes = w.into_bytes();
        // The single slot entry sits right after banks/line/interleave and
        // the slot count: patch it to point past the one-slot arena.
        let off = 8 * 4;
        bytes[off..off + 4].copy_from_slice(&7u32.to_le_bytes());
        let mut r = sim::snapshot::Reader::new(&bytes, "llc");
        assert!(Llc::load(&mut r).is_err());
    }

    #[test]
    fn words_registered_to_counts() {
        let mut l = llc();
        l.register_word(LineAddr(0x0), 0, Registration::Cache(CoreId(5)));
        l.register_word(
            LineAddr(0x40),
            3,
            Registration::Stash {
                core: CoreId(5),
                map_index: 0,
            },
        );
        l.register_word(LineAddr(0x40), 4, Registration::Cache(CoreId(6)));
        assert_eq!(l.words_registered_to(CoreId(5)), 2);
        assert_eq!(l.words_registered_to(CoreId(6)), 1);
    }
}
