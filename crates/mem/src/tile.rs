//! Strided tile descriptors — the `AddMap` parameters of Figure 2.
//!
//! An `AddMap(stashBase, globalBase, fieldSize, objectSize, rowSize,
//! strideSize, numStrides, isCoherent)` call describes a (possibly 2-D,
//! possibly strided) tile of an array-of-structs in the global address
//! space, of which only one field per object is mapped compactly into the
//! local memory. [`TileMap`] is that descriptor; both the stash-map and the
//! DMA engine consume it.

use crate::addr::{VAddr, WORD_BYTES};

/// Descriptor of a strided global tile mapped compactly into local memory.
///
/// Local (stash) offsets run over the tile's field bytes contiguously:
/// element `i` of the flattened tile occupies local bytes
/// `[i * field_bytes, (i+1) * field_bytes)`.
///
/// # Example
///
/// A 1-D slice of `myLen` structs mapping one 4-byte field (the paper's
/// Figure 1b call):
///
/// ```
/// use mem::addr::VAddr;
/// use mem::tile::TileMap;
///
/// let map = TileMap::new(VAddr(0x1000), 4, 16, 8, 0, 1).unwrap();
/// assert_eq!(map.total_elements(), 8);
/// assert_eq!(map.local_bytes(), 32);
/// // Element 3's field lives at globalBase + 3 * objectSize.
/// assert_eq!(map.virt_of_local_offset(12), VAddr(0x1000 + 3 * 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileMap {
    global_base: VAddr,
    field_bytes: u64,
    object_bytes: u64,
    row_elems: u64,
    row_stride_bytes: u64,
    rows: u64,
}

impl TileMap {
    /// Creates a tile descriptor.
    ///
    /// Parameters mirror `AddMap`: `field_bytes` of each `object_bytes`
    /// object are mapped; a row holds `row_elems` objects; consecutive rows
    /// start `row_stride_bytes` apart in global memory; there are `rows`
    /// rows (`numStrides`). A linear array is `rows == 1` (and
    /// `row_stride_bytes` is ignored; pass 0 like the paper's example).
    ///
    /// # Errors
    ///
    /// Returns a message if the geometry is inconsistent: zero sizes, a
    /// field larger than its object, word-misaligned sizes (the stash
    /// tracks coherence at word granularity; the paper's benchmarks have no
    /// byte-granularity accesses), or overlapping rows.
    pub fn new(
        global_base: VAddr,
        field_bytes: u64,
        object_bytes: u64,
        row_elems: u64,
        row_stride_bytes: u64,
        rows: u64,
    ) -> Result<Self, String> {
        if field_bytes == 0 || object_bytes == 0 || row_elems == 0 || rows == 0 {
            return Err("tile sizes must be nonzero".into());
        }
        if field_bytes > object_bytes {
            return Err(format!(
                "field ({field_bytes} B) larger than object ({object_bytes} B)"
            ));
        }
        if !field_bytes.is_multiple_of(WORD_BYTES) || !object_bytes.is_multiple_of(WORD_BYTES) {
            return Err("field and object sizes must be word multiples".into());
        }
        if !global_base.0.is_multiple_of(WORD_BYTES) {
            return Err("global base must be word aligned".into());
        }
        if rows > 1 && row_stride_bytes < row_elems * object_bytes {
            return Err("rows overlap: stride smaller than row".into());
        }
        Ok(Self {
            global_base,
            field_bytes,
            object_bytes,
            row_elems,
            row_stride_bytes,
            rows,
        })
    }

    /// The tile's global virtual base address.
    pub fn global_base(&self) -> VAddr {
        self.global_base
    }

    /// Mapped bytes per object.
    pub fn field_bytes(&self) -> u64 {
        self.field_bytes
    }

    /// Object size in the global array-of-structs.
    pub fn object_bytes(&self) -> u64 {
        self.object_bytes
    }

    /// Objects per row.
    pub fn row_elems(&self) -> u64 {
        self.row_elems
    }

    /// Number of rows (`numStrides`).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bytes between consecutive row starts (`strideSize`; meaningful
    /// only when `rows > 1`).
    pub fn row_stride_bytes(&self) -> u64 {
        self.row_stride_bytes
    }

    /// Total mapped objects.
    pub fn total_elements(&self) -> u64 {
        self.rows * self.row_elems
    }

    /// Bytes the tile occupies in local (stash/scratchpad) space.
    pub fn local_bytes(&self) -> u64 {
        self.total_elements() * self.field_bytes
    }

    /// Words the tile occupies in local space.
    pub fn local_words(&self) -> u64 {
        self.local_bytes() / WORD_BYTES
    }

    /// Words per mapped field.
    pub fn words_per_field(&self) -> u64 {
        self.field_bytes / WORD_BYTES
    }

    /// Translates a local byte offset to its global virtual address — the
    /// paper's six-operation miss translation (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `local_off` is outside the tile.
    pub fn virt_of_local_offset(&self, local_off: u64) -> VAddr {
        assert!(
            local_off < self.local_bytes(),
            "local offset {local_off} outside tile of {} bytes",
            self.local_bytes()
        );
        let elem = local_off / self.field_bytes; // op 1
        let byte_in_field = local_off % self.field_bytes; // op 2
        let row = elem / self.row_elems; // op 3
        let col = elem % self.row_elems; // op 4
        let row_base = row * self.row_stride_bytes; // op 5
        let obj = col * self.object_bytes; // op 6
        self.global_base.add(row_base + obj + byte_in_field)
    }

    /// Local byte offset of a flattened element index.
    ///
    /// # Panics
    ///
    /// Panics if `elem` is outside the tile.
    pub fn local_offset_of_element(&self, elem: u64) -> u64 {
        assert!(elem < self.total_elements(), "element {elem} outside tile");
        elem * self.field_bytes
    }

    /// Reverse translation: the local byte offset holding global virtual
    /// address `va`, or `None` if `va` is not part of the mapped field
    /// bytes (it may be an unmapped field of the same object, or outside
    /// the tile entirely).
    pub fn local_offset_of_virt(&self, va: VAddr) -> Option<u64> {
        let off = va.0.checked_sub(self.global_base.0)?;
        let (row, within_row) = if self.rows == 1 {
            (0, off)
        } else {
            (off / self.row_stride_bytes, off % self.row_stride_bytes)
        };
        if row >= self.rows {
            return None;
        }
        let col = within_row / self.object_bytes;
        let byte_in_obj = within_row % self.object_bytes;
        if col >= self.row_elems || byte_in_obj >= self.field_bytes {
            return None;
        }
        let elem = row * self.row_elems + col;
        Some(elem * self.field_bytes + byte_in_obj)
    }

    /// Iterates over the global virtual address of every mapped element's
    /// field base, in local-offset order.
    pub fn iter_field_vaddrs(&self) -> impl Iterator<Item = VAddr> + '_ {
        (0..self.total_elements()).map(move |e| self.virt_of_local_offset(e * self.field_bytes))
    }

    /// The set of virtual pages the tile touches (sorted, deduplicated);
    /// its size bounds the VP-map entries the mapping needs.
    pub fn pages_touched(&self, page_bytes: u64) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .iter_field_vaddrs()
            .flat_map(|va| {
                let first = va.page(page_bytes);
                let last = va.add(self.field_bytes - 1).page(page_bytes);
                first..=last
            })
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Whether two tiles describe exactly the same global mapping — the
    /// §4.5 data-replication check compares "the tile specific parameters".
    pub fn same_mapping(&self, other: &TileMap) -> bool {
        self == other
    }

    /// Serializes the six `AddMap` parameters.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_u64(self.global_base.0);
        w.put_u64(self.field_bytes);
        w.put_u64(self.object_bytes);
        w.put_u64(self.row_elems);
        w.put_u64(self.row_stride_bytes);
        w.put_u64(self.rows);
    }

    /// Restores a tile written by [`TileMap::save`], revalidating the
    /// geometry.
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let global_base = VAddr(r.take_u64()?);
        let field_bytes = r.take_u64()?;
        let object_bytes = r.take_u64()?;
        let row_elems = r.take_u64()?;
        let row_stride_bytes = r.take_u64()?;
        let rows = r.take_u64()?;
        Self::new(
            global_base,
            field_bytes,
            object_bytes,
            row_elems,
            row_stride_bytes,
            rows,
        )
        .map_err(|detail| sim::SimError::CheckpointCorrupt {
            what: "tile map",
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aos_1d() -> TileMap {
        // 8 objects of 16 B, one 4-B field mapped, linear.
        TileMap::new(VAddr(0x1000), 4, 16, 8, 0, 1).unwrap()
    }

    fn aos_2d() -> TileMap {
        // 4 rows × 8 objects of 32 B; rows are 1024 B apart; 8-B field.
        TileMap::new(VAddr(0x4000), 8, 32, 8, 1024, 4).unwrap()
    }

    #[test]
    fn forward_translation_1d() {
        let t = aos_1d();
        for e in 0..8 {
            assert_eq!(
                t.virt_of_local_offset(e * 4),
                VAddr(0x1000 + e * 16),
                "element {e}"
            );
        }
    }

    #[test]
    fn forward_translation_2d_strided() {
        let t = aos_2d();
        // Element (row 2, col 3): local offset (2*8+3)*8.
        let off = (2 * 8 + 3) * 8;
        assert_eq!(
            t.virt_of_local_offset(off),
            VAddr(0x4000 + 2 * 1024 + 3 * 32)
        );
        // Second word of that field.
        assert_eq!(
            t.virt_of_local_offset(off + 4),
            VAddr(0x4000 + 2 * 1024 + 3 * 32 + 4)
        );
    }

    #[test]
    fn reverse_inverts_forward() {
        for t in [aos_1d(), aos_2d()] {
            for off in (0..t.local_bytes()).step_by(4) {
                let va = t.virt_of_local_offset(off);
                assert_eq!(t.local_offset_of_virt(va), Some(off));
            }
        }
    }

    #[test]
    fn reverse_rejects_unmapped_bytes() {
        let t = aos_1d();
        // The 12 unmapped bytes of each object are not in the stash.
        assert_eq!(t.local_offset_of_virt(VAddr(0x1000 + 4)), None);
        assert_eq!(t.local_offset_of_virt(VAddr(0x1000 + 15)), None);
        // Below the base and past the tile.
        assert_eq!(t.local_offset_of_virt(VAddr(0xFFF)), None);
        assert_eq!(t.local_offset_of_virt(VAddr(0x1000 + 8 * 16)), None);
    }

    #[test]
    fn compaction_factor() {
        let t = aos_1d();
        // 8 * 4 = 32 local bytes represent 8 * 16 = 128 global bytes.
        assert_eq!(t.local_bytes(), 32);
        assert_eq!(t.total_elements() * t.object_bytes(), 128);
    }

    #[test]
    fn pages_touched_spans_strides() {
        let t = aos_2d();
        // Rows at 0x4000, 0x4400, 0x4800, 0x4C00: all within page 4 (4 KB).
        assert_eq!(t.pages_touched(4096), vec![4]);
        // With 1 KB pages each row is its own page.
        assert_eq!(t.pages_touched(1024), vec![16, 17, 18, 19]);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(TileMap::new(VAddr(0), 8, 4, 1, 0, 1).is_err()); // field > object
        assert!(TileMap::new(VAddr(0), 0, 4, 1, 0, 1).is_err()); // zero field
        assert!(TileMap::new(VAddr(0), 3, 16, 1, 0, 1).is_err()); // not word multiple
        assert!(TileMap::new(VAddr(1), 4, 16, 1, 0, 1).is_err()); // misaligned base
        assert!(TileMap::new(VAddr(0), 4, 16, 8, 64, 2).is_err()); // overlapping rows
    }

    #[test]
    fn same_mapping_detects_replication() {
        let a = aos_2d();
        let b = TileMap::new(VAddr(0x4000), 8, 32, 8, 1024, 4).unwrap();
        let c = TileMap::new(VAddr(0x4000), 8, 32, 8, 1024, 2).unwrap();
        assert!(a.same_mapping(&b));
        assert!(!a.same_mapping(&c));
    }
}
