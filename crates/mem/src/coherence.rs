//! DeNovo word-granularity coherence state.
//!
//! The paper extends the DeNovo protocol (Choi et al., PACT 2011): three
//! stable states per *word*, no transient states, no sharer lists, and
//! software-triggered self-invalidation at synchronization points (kernel
//! boundaries here). Stores must obtain *registration* from the LLC
//! registry (the analogue of MESI ownership); loads of non-resident words
//! fetch them as Shared.
//!
//! The same state machine runs in the GPU L1s, the CPU L1s, and — with two
//! spare encodings reused for the writeback bit (§4.4) — the stash.

/// DeNovo per-word coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WordState {
    /// No valid copy of the word.
    #[default]
    Invalid,
    /// A valid, read-only copy; silently discarded at self-invalidation.
    Shared,
    /// This core holds the only up-to-date copy (MESI "ownership"); the
    /// registry records the owner. Survives self-invalidation.
    Registered,
}

impl WordState {
    /// Whether a load of this word hits.
    pub fn load_hits(self) -> bool {
        !matches!(self, WordState::Invalid)
    }

    /// Whether a store to this word hits (stores hit only on Registered —
    /// "Stores miss when in Shared or Invalid state", §4.3).
    pub fn store_hits(self) -> bool {
        matches!(self, WordState::Registered)
    }

    /// The state after a kernel-boundary self-invalidation: Registered
    /// data is kept, everything else drops to Invalid (§4.3,
    /// *Self-invalidations*).
    pub fn after_self_invalidate(self) -> WordState {
        match self {
            WordState::Registered => WordState::Registered,
            _ => WordState::Invalid,
        }
    }

    /// Encoded state-bit count per word: DeNovo needs 2 bits (three states
    /// plus a spare encoding the stash reuses as its writeback flag).
    pub const BITS: u32 = 2;
}

/// Stable one-byte snapshot encoding of a word state (I=0, S=1, R=2).
pub fn word_state_code(state: WordState) -> u8 {
    match state {
        WordState::Invalid => 0,
        WordState::Shared => 1,
        WordState::Registered => 2,
    }
}

/// Decodes a [`word_state_code`] byte, rejecting unknown values.
pub fn word_state_from_code(code: u8) -> Result<WordState, sim::SimError> {
    Ok(match code {
        0 => WordState::Invalid,
        1 => WordState::Shared,
        2 => WordState::Registered,
        v => {
            return Err(sim::SimError::CheckpointCorrupt {
                what: "word state",
                detail: format!("unknown word state code {v}"),
            })
        }
    })
}

impl std::fmt::Display for WordState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WordState::Invalid => "I",
            WordState::Shared => "S",
            WordState::Registered => "R",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rules_match_denovo() {
        assert!(!WordState::Invalid.load_hits());
        assert!(WordState::Shared.load_hits());
        assert!(WordState::Registered.load_hits());
        assert!(!WordState::Invalid.store_hits());
        assert!(!WordState::Shared.store_hits());
        assert!(WordState::Registered.store_hits());
    }

    #[test]
    fn self_invalidation_keeps_only_registered() {
        assert_eq!(
            WordState::Invalid.after_self_invalidate(),
            WordState::Invalid
        );
        assert_eq!(
            WordState::Shared.after_self_invalidate(),
            WordState::Invalid
        );
        assert_eq!(
            WordState::Registered.after_self_invalidate(),
            WordState::Registered
        );
    }

    #[test]
    fn two_state_bits() {
        assert_eq!(WordState::BITS, 2);
    }
}
