//! The scratchpad: directly addressed, banked, software-managed SRAM.
//!
//! A scratchpad access needs no tags, no TLB and never misses (§1.2); its
//! model is therefore mostly bookkeeping: per-thread-block allocation of
//! the 16 KB space, bank-conflict arithmetic for warp accesses, and an
//! access counter for the energy model. Data values are not simulated —
//! the memory system's behaviour depends only on addresses and states.

use crate::addr::WORD_BYTES;
use sim::SimError;

/// A banked scratchpad (CUDA "shared memory").
///
/// # Example
///
/// ```
/// use mem::scratchpad::Scratchpad;
///
/// let mut sp = Scratchpad::new(16 * 1024, 32);
/// let alloc = sp.alloc(1024).unwrap();
/// sp.access(alloc, 0);
/// assert_eq!(sp.accesses(), 1);
/// sp.free_all(); // end of kernel: scratchpad contents are discarded
/// ```
#[derive(Debug, Clone)]
pub struct Scratchpad {
    capacity_bytes: usize,
    banks: usize,
    allocated_bytes: usize,
    accesses: u64,
}

impl Scratchpad {
    /// Creates a scratchpad of `capacity_bytes` with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero; [`Self::try_new`] reports the
    /// same condition as an error instead.
    pub fn new(capacity_bytes: usize, banks: usize) -> Self {
        Self::try_new(capacity_bytes, banks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a scratchpad of `capacity_bytes` with `banks` banks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if either parameter is zero.
    pub fn try_new(capacity_bytes: usize, banks: usize) -> Result<Self, SimError> {
        if capacity_bytes == 0 || banks == 0 {
            return Err(SimError::Config(format!(
                "scratchpad needs nonzero capacity and banks \
                 (got {capacity_bytes} B, {banks} banks)"
            )));
        }
        Ok(Self {
            capacity_bytes,
            banks,
            allocated_bytes: 0,
            accesses: 0,
        })
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bank count.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Allocates `bytes` (word-aligned up) for a thread block and returns
    /// the base offset.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if the space does not fit — the
    /// runtime would then limit thread-block occupancy, which the GPU
    /// model handles.
    pub fn alloc(&mut self, bytes: usize) -> Result<usize, SimError> {
        let bytes = bytes.next_multiple_of(WORD_BYTES as usize);
        if self.allocated_bytes + bytes > self.capacity_bytes {
            return Err(SimError::OutOfRange {
                what: "scratchpad allocation",
                offset: self.allocated_bytes + bytes,
                size: self.capacity_bytes,
            });
        }
        let base = self.allocated_bytes;
        self.allocated_bytes += bytes;
        Ok(base)
    }

    /// Frees every allocation (end of kernel — scratchpad data does not
    /// survive kernel boundaries, §1.2).
    pub fn free_all(&mut self) {
        self.allocated_bytes = 0;
    }

    /// Records one access at `base + offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access is outside the allocated space.
    pub fn access(&mut self, base: usize, offset: usize) {
        assert!(
            base + offset < self.allocated_bytes.max(1),
            "scratchpad access at {}+{} outside {} allocated bytes",
            base,
            offset,
            self.allocated_bytes
        );
        self.accesses += 1;
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The bank a byte offset falls in (words interleave across banks).
    pub fn bank_of(&self, offset: usize) -> usize {
        (offset / WORD_BYTES as usize) % self.banks
    }

    /// Number of serialized bank cycles a set of lane offsets needs: the
    /// maximum number of lanes hitting one bank (bank conflicts serialize).
    pub fn conflict_cycles(&self, lane_offsets: &[usize]) -> u64 {
        let mut per_bank = vec![0u64; self.banks];
        for &off in lane_offsets {
            per_bank[self.bank_of(off)] += 1;
        }
        per_bank.into_iter().max().unwrap_or(0).max(1)
    }

    /// Serializes geometry, the allocation watermark, and the access tally.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.capacity_bytes);
        w.put_usize(self.banks);
        w.put_usize(self.allocated_bytes);
        w.put_u64(self.accesses);
    }

    /// Restores a scratchpad written by [`Scratchpad::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, SimError> {
        let capacity_bytes = r.take_usize()?;
        let banks = r.take_usize()?;
        let allocated_bytes = r.take_usize()?;
        let accesses = r.take_u64()?;
        let mut sp =
            Self::try_new(capacity_bytes, banks).map_err(|e| SimError::CheckpointCorrupt {
                what: "scratchpad",
                detail: e.to_string(),
            })?;
        if allocated_bytes > capacity_bytes {
            return Err(SimError::CheckpointCorrupt {
                what: "scratchpad",
                detail: format!("{allocated_bytes} allocated of {capacity_bytes} capacity"),
            });
        }
        sp.allocated_bytes = allocated_bytes;
        sp.accesses = accesses;
        Ok(sp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Scratchpad {
        Scratchpad::new(16 * 1024, 32)
    }

    #[test]
    fn alloc_and_exhaust() {
        let mut s = sp();
        let a = s.alloc(8 * 1024).unwrap();
        let b = s.alloc(8 * 1024).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 8 * 1024);
        match s.alloc(4) {
            Err(SimError::OutOfRange { offset, size, .. }) => {
                assert_eq!(offset, 16 * 1024 + 4);
                assert_eq!(size, 16 * 1024);
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        s.free_all();
        assert_eq!(s.alloc(16 * 1024).unwrap(), 0);
    }

    #[test]
    fn try_new_rejects_zero_parameters() {
        assert!(matches!(
            Scratchpad::try_new(0, 32),
            Err(SimError::Config(_))
        ));
        assert!(matches!(
            Scratchpad::try_new(1024, 0),
            Err(SimError::Config(_))
        ));
        assert!(Scratchpad::try_new(1024, 32).is_ok());
    }

    #[test]
    fn alloc_rounds_to_words() {
        let mut s = sp();
        s.alloc(3).unwrap();
        assert_eq!(s.allocated_bytes(), 4);
    }

    #[test]
    fn conflict_free_stride_one() {
        let s = sp();
        // 32 consecutive words -> 32 distinct banks -> 1 cycle.
        let offsets: Vec<usize> = (0..32).map(|i| i * 4).collect();
        assert_eq!(s.conflict_cycles(&offsets), 1);
    }

    #[test]
    fn same_bank_serializes() {
        let s = sp();
        // Stride of 32 words: every lane hits bank 0.
        let offsets: Vec<usize> = (0..32).map(|i| i * 32 * 4).collect();
        assert_eq!(s.conflict_cycles(&offsets), 32);
    }

    #[test]
    fn two_way_conflict() {
        let s = sp();
        // Stride of 2 words: 32 lanes land on 16 even banks, two per bank.
        let offsets: Vec<usize> = (0..32).map(|i| i * 2 * 4).collect();
        assert_eq!(s.conflict_cycles(&offsets), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_access_panics() {
        let mut s = sp();
        let base = s.alloc(64).unwrap();
        s.access(base, 64);
    }

    #[test]
    fn scratchpad_round_trips_through_snapshot() {
        let mut s = sp();
        let base = s.alloc(256).unwrap();
        s.access(base, 0);
        s.access(base, 8);
        let mut w = sim::snapshot::Writer::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "scratchpad");
        let restored = Scratchpad::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.capacity_bytes(), s.capacity_bytes());
        assert_eq!(restored.banks(), s.banks());
        assert_eq!(restored.allocated_bytes(), s.allocated_bytes());
        assert_eq!(restored.accesses(), s.accesses());
    }

    #[test]
    fn scratchpad_load_rejects_overcommit() {
        let mut w = sim::snapshot::Writer::new();
        w.put_usize(1024);
        w.put_usize(32);
        w.put_usize(2048); // allocated > capacity
        w.put_u64(0);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "scratchpad");
        assert!(matches!(
            Scratchpad::load(&mut r),
            Err(SimError::CheckpointCorrupt { .. })
        ));
    }
}
