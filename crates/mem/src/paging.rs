//! Demand-allocating page table and TLB.
//!
//! The simulator allocates physical frames on first touch, so any virtual
//! address a workload names is backed deterministically. Frames are handed
//! out sequentially but *shuffled within a window* relative to virtual
//! order, so physically indexed structures (L2 bank interleaving) see a
//! realistic, non-identity layout while runs stay reproducible.
//!
//! The TLB is a simple LRU array. The paper does not model TLB misses
//! ("all our TLB accesses are charged as if they are hits"), so the TLB
//! here exists for *event counting* — every translation is charged Table
//! 3's 14.1 pJ — and for the VP-map's occupancy accounting.

use crate::addr::{PAddr, VAddr};
use std::collections::HashMap;
use std::sync::Arc;

/// Frame-table sentinel for "page not mapped".
const NO_FRAME: u64 = u64::MAX;

/// Virtual pages below this index live in the direct-indexed table; the
/// workloads' address spaces are dense and low, so in practice every
/// translation is one array read. Higher (pathological) pages spill to a
/// hash map so correctness never depends on the window.
const DIRECT_PAGES: u64 = 1 << 20;

/// A demand-allocating page table.
///
/// # Example
///
/// ```
/// use mem::addr::VAddr;
/// use mem::paging::PageTable;
///
/// let mut pt = PageTable::new(4096);
/// let a = pt.translate(VAddr(0x0));
/// let b = pt.translate(VAddr(0x1000));
/// assert_ne!(a.frame(4096), b.frame(4096));
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_bytes: u64,
    /// Direct-indexed page → frame table ([`NO_FRAME`] = unmapped),
    /// grown on demand: the hot translation path is a single indexed
    /// read, no hashing. Behind an `Arc` so cloning a page table — the
    /// epoch-parallel runner snapshots one per CU per kernel, and its
    /// pre-touch pass guarantees shards never allocate — shares the
    /// table instead of copying it; the first insert after a clone
    /// copies on write.
    frames: Arc<Vec<u64>>,
    /// Sparse spill for pages at or beyond [`DIRECT_PAGES`].
    spill: HashMap<u64, u64>,
    mapped: usize,
    next_frame: u64,
}

impl PageTable {
    /// Creates a page table with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            page_bytes,
            frames: Arc::new(Vec::new()),
            spill: HashMap::new(),
            mapped: 0,
            next_frame: 16, // leave low frames unused, like a real kernel
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    #[inline]
    fn lookup(&self, page: u64) -> Option<u64> {
        if page < DIRECT_PAGES {
            match self.frames.get(page as usize) {
                Some(&f) if f != NO_FRAME => Some(f),
                _ => None,
            }
        } else {
            self.spill.get(&page).copied()
        }
    }

    fn insert(&mut self, page: u64, frame: u64) {
        if page < DIRECT_PAGES {
            let idx = page as usize;
            let frames = Arc::make_mut(&mut self.frames);
            if idx >= frames.len() {
                frames.resize(idx + 1, NO_FRAME);
            }
            frames[idx] = frame;
        } else {
            self.spill.insert(page, frame);
        }
        self.mapped += 1;
    }

    /// Translates a virtual address, allocating a frame on first touch.
    pub fn translate(&mut self, va: VAddr) -> PAddr {
        let page = va.page(self.page_bytes);
        let frame = match self.lookup(page) {
            Some(f) => f,
            None => {
                // Mix the frame number so physical bank interleaving does
                // not mirror virtual order exactly; keep it bijective.
                let f = self.next_frame ^ (self.next_frame >> 1 & 0x3);
                self.insert(page, f);
                self.next_frame += 1;
                f
            }
        };
        PAddr(frame * self.page_bytes + va.offset_in(self.page_bytes))
    }

    /// Translates without allocating; `None` if the page was never touched.
    pub fn try_translate(&self, va: VAddr) -> Option<PAddr> {
        let page = va.page(self.page_bytes);
        self.lookup(page)
            .map(|f| PAddr(f * self.page_bytes + va.offset_in(self.page_bytes)))
    }

    /// Number of pages mapped so far.
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Serializes the table sparsely: only mapped `(page, frame)` pairs
    /// (direct window and spill alike), plus the allocation cursor.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_u64(self.page_bytes);
        w.put_u64(self.next_frame);
        let direct = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, &f)| f != NO_FRAME)
            .map(|(p, &f)| (p as u64, f));
        let mut spill: Vec<(u64, u64)> = self.spill.iter().map(|(&p, &f)| (p, f)).collect();
        spill.sort_unstable();
        let pairs: Vec<(u64, u64)> = direct.chain(spill).collect();
        w.put_usize(pairs.len());
        for (page, frame) in pairs {
            w.put_u64(page);
            w.put_u64(frame);
        }
    }

    /// Restores a page table written by [`PageTable::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let page_bytes = r.take_u64()?;
        if !page_bytes.is_power_of_two() {
            return Err(sim::SimError::CheckpointCorrupt {
                what: "page table",
                detail: format!("page size {page_bytes} is not a power of two"),
            });
        }
        let next_frame = r.take_u64()?;
        let n = r.take_usize()?;
        let mut pt = Self::new(page_bytes);
        for _ in 0..n {
            let page = r.take_u64()?;
            let frame = r.take_u64()?;
            if frame == NO_FRAME {
                return Err(sim::SimError::CheckpointCorrupt {
                    what: "page table",
                    detail: format!("page {page:#x} maps to the unmapped sentinel"),
                });
            }
            pt.insert(page, frame);
        }
        pt.next_frame = next_frame;
        Ok(pt)
    }
}

/// A least-recently-used TLB over virtual pages.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: usize,
    page_bytes: u64,
    /// `(virtual page, last-use tick)` pairs, unordered.
    resident: Vec<(u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        Self {
            entries,
            page_bytes,
            resident: Vec::with_capacity(entries),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the page of `va`, updating LRU state and hit/miss counts.
    /// Returns `true` on a hit.
    pub fn access(&mut self, va: VAddr) -> bool {
        self.tick += 1;
        let page = va.page(self.page_bytes);
        if let Some(slot) = self.resident.iter_mut().find(|(p, _)| *p == page) {
            slot.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() == self.entries {
            let lru = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.resident.swap_remove(lru);
        }
        self.resident.push((page, self.tick));
        false
    }

    /// Whether a page is currently resident (no LRU update).
    pub fn contains(&self, va: VAddr) -> bool {
        let page = va.page(self.page_bytes);
        self.resident.iter().any(|(p, _)| *p == page)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Currently resident page count.
    pub fn occupancy(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new(4096);
        let a1 = pt.translate(VAddr(0x1234));
        let a2 = pt.translate(VAddr(0x1234));
        assert_eq!(a1, a2);
    }

    #[test]
    fn offsets_survive_translation() {
        let mut pt = PageTable::new(4096);
        let pa = pt.translate(VAddr(0x5678));
        assert_eq!(pa.offset_in(4096), 0x678);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new(4096);
        let frames: Vec<u64> = (0..64)
            .map(|p| pt.translate(VAddr(p * 4096)).frame(4096))
            .collect();
        let mut dedup = frames.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            frames.len(),
            "frame allocation must be injective"
        );
    }

    #[test]
    fn try_translate_does_not_allocate() {
        let mut pt = PageTable::new(4096);
        assert_eq!(pt.try_translate(VAddr(0x9000)), None);
        pt.translate(VAddr(0x9000));
        assert!(pt.try_translate(VAddr(0x9000)).is_some());
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn tlb_hits_after_fill() {
        let mut tlb = Tlb::new(4, 4096);
        assert!(!tlb.access(VAddr(0x1000)));
        assert!(tlb.access(VAddr(0x1FFF))); // same page
        assert_eq!(tlb.stats(), (1, 1));
    }

    #[test]
    fn page_table_round_trips_through_snapshot() {
        let mut pt = PageTable::new(4096);
        for p in 0..100u64 {
            pt.translate(VAddr(p * 4096 * 7));
        }
        // Force a spill-map entry too.
        pt.translate(VAddr((DIRECT_PAGES + 5) * 4096));
        let mut w = sim::snapshot::Writer::new();
        pt.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "page table");
        let mut restored = PageTable::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.mapped_pages(), pt.mapped_pages());
        assert_eq!(restored.page_bytes(), pt.page_bytes());
        for p in 0..100u64 {
            let va = VAddr(p * 4096 * 7);
            assert_eq!(restored.try_translate(va), pt.try_translate(va));
        }
        let spill_va = VAddr((DIRECT_PAGES + 5) * 4096);
        assert_eq!(restored.try_translate(spill_va), pt.try_translate(spill_va));
        // Allocation resumes from the same cursor: the next fresh page
        // must get the same frame either way.
        assert_eq!(
            restored.translate(VAddr(0xDEAD_0000)),
            pt.translate(VAddr(0xDEAD_0000))
        );
    }

    #[test]
    fn page_table_load_rejects_sentinel_frame() {
        let mut w = sim::snapshot::Writer::new();
        w.put_u64(4096);
        w.put_u64(16);
        w.put_usize(1);
        w.put_u64(3);
        w.put_u64(NO_FRAME);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "page table");
        assert!(matches!(
            PageTable::load(&mut r),
            Err(sim::SimError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn tlb_evicts_lru() {
        let mut tlb = Tlb::new(2, 4096);
        tlb.access(VAddr(0x0000)); // page 0
        tlb.access(VAddr(0x1000)); // page 1
        tlb.access(VAddr(0x0000)); // touch page 0 -> page 1 is LRU
        tlb.access(VAddr(0x2000)); // evicts page 1
        assert!(tlb.contains(VAddr(0x0000)));
        assert!(!tlb.contains(VAddr(0x1000)));
        assert!(tlb.contains(VAddr(0x2000)));
        assert_eq!(tlb.occupancy(), 2);
    }
}
