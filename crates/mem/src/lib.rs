//! Memory-system substrates for the stash reproduction.
//!
//! Everything the paper's evaluation platform provides below the stash
//! itself, built from scratch:
//!
//! * [`addr`] — typed virtual/physical addresses, words, lines, pages;
//! * [`tile`] — the strided 1-D/2-D tile descriptor shared by `AddMap` and
//!   the DMA engine (Figure 2 of the paper);
//! * [`paging`] — a demand-allocating page table and a 64-entry TLB;
//! * [`coherence`] — the DeNovo word-granularity coherence state machine
//!   (Invalid / Shared / Registered) the paper extends for the stash;
//! * [`cache`] — a set-associative write-back cache with line-granularity
//!   tags and word-granularity DeNovo state (the GPU and CPU L1s);
//! * [`llc`] — the banked shared NUCA L2 that doubles as the registry
//!   (directory): it records which core (and which stash-map entry) holds
//!   the up-to-date copy of each word;
//! * [`scratchpad`] — the directly addressed, banked local memory;
//! * [`dma`] — a D2MA-style engine that preloads scratchpads with strided
//!   tiles and writes them back, bypassing the L1.
//!
//! # Example
//!
//! ```
//! use mem::addr::VAddr;
//! use mem::paging::PageTable;
//!
//! let mut pt = PageTable::new(4096);
//! let pa = pt.translate(VAddr(0x1_2345));
//! assert_eq!(pt.translate(VAddr(0x1_2345)), pa); // stable mapping
//! ```

#![forbid(unsafe_code)]

pub mod addr;
pub mod cache;
pub mod coherence;
pub mod dma;
pub mod llc;
pub mod paging;
pub mod scratchpad;
pub mod tile;

pub use addr::{LineAddr, PAddr, VAddr, WORD_BYTES};
pub use cache::DenovoCache;
pub use coherence::WordState;
pub use llc::{CoreId, Llc};
pub use scratchpad::Scratchpad;
pub use tile::TileMap;
