//! Set-associative write-back cache with DeNovo word states.
//!
//! Tags are at line granularity, coherence state at word granularity —
//! the "line-based DeNovo" configuration the paper evaluates. The cache is
//! a passive structure: it answers probes and applies fills/evictions;
//! the memory-system orchestrator decides what traffic those imply.

use crate::addr::{LineAddr, PAddr, WORD_BYTES};
use crate::coherence::{word_state_code, word_state_from_code, WordState};

/// What `ensure_line` had to do to make a tag resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsureOutcome {
    /// Whether the tag was already present (no allocation happened).
    pub already_present: bool,
    /// A victim line that was displaced, if allocation required one.
    pub evicted: Option<EvictedLine>,
}

/// A line displaced from the cache.
///
/// Shared and Invalid words vanish silently (the LLC has their data);
/// *Registered* words are the only up-to-date copy in the system and must
/// be written back by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// The displaced line's address.
    pub line: LineAddr,
    /// Word indices that were Registered and need writeback.
    pub registered_words: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct LineEntry {
    line: LineAddr,
    last_use: u64,
}

/// A set-associative write-back cache with per-word DeNovo state.
///
/// # Example
///
/// ```
/// use mem::addr::PAddr;
/// use mem::cache::DenovoCache;
/// use mem::coherence::WordState;
///
/// let mut c = DenovoCache::new(32 * 1024, 8, 64);
/// let a = PAddr(0x1000);
/// assert_eq!(c.word_state(a), WordState::Invalid);
/// c.ensure_line(a);
/// c.set_word(a, WordState::Shared);
/// assert!(c.word_state(a).load_hits());
/// ```
#[derive(Debug, Clone)]
pub struct DenovoCache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    words_per_line: usize,
    lines: Vec<Option<LineEntry>>,
    /// Word-state arena, one `words_per_line` stripe per tag slot: slot
    /// `i`'s words live at `i * words_per_line ..`. A single flat
    /// allocation keeps the per-word hot path an indexed read and makes
    /// cloning the cache — the epoch-parallel runner snapshots every L1
    /// per CU shard — a memcpy instead of a per-line allocation storm.
    words: Vec<WordState>,
    tick: u64,
}

impl DenovoCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way sets of
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways > 0 && line_bytes > 0 && capacity_bytes > 0);
        let total_lines = capacity_bytes / line_bytes;
        assert_eq!(total_lines * line_bytes, capacity_bytes, "ragged capacity");
        assert_eq!(total_lines % ways, 0, "capacity must divide into ways");
        let sets = total_lines / ways;
        let words_per_line = line_bytes / WORD_BYTES as usize;
        Self {
            sets,
            ways,
            line_bytes: line_bytes as u64,
            words_per_line,
            lines: vec![None; total_lines],
            words: vec![WordState::Invalid; total_lines * words_per_line],
            tick: 0,
        }
    }

    /// Slot `i`'s word-state stripe.
    #[inline]
    fn stripe(&self, i: usize) -> &[WordState] {
        &self.words[i * self.words_per_line..(i + 1) * self.words_per_line]
    }

    /// Slot `i`'s word-state stripe, mutably.
    #[inline]
    fn stripe_mut(&mut self, i: usize) -> &mut [WordState] {
        let wpl = self.words_per_line;
        &mut self.words[i * wpl..(i + 1) * wpl]
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Words per line.
    pub fn words_per_line(&self) -> usize {
        self.words_per_line
    }

    fn set_of(&self, line: LineAddr) -> usize {
        ((line.0 / self.line_bytes) % self.sets as u64) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        self.slot_range(self.set_of(line))
            .find(|&i| self.lines[i].as_ref().is_some_and(|e| e.line == line))
    }

    /// The coherence state of the word at `pa` (Invalid if the tag is not
    /// resident).
    pub fn word_state(&self, pa: PAddr) -> WordState {
        match self.find(pa.line(self.line_bytes)) {
            Some(i) => self.stripe(i)[pa.word_in_line(self.line_bytes)],
            None => WordState::Invalid,
        }
    }

    /// Marks the line containing `pa` most-recently used.
    pub fn touch(&mut self, pa: PAddr) {
        self.tick += 1;
        let line = pa.line(self.line_bytes);
        if let Some(i) = self.find(line) {
            self.lines[i].as_mut().expect("occupied").last_use = self.tick;
        }
    }

    /// Makes the tag for `pa`'s line resident, evicting an LRU victim if
    /// the set is full. Newly allocated lines start with all words Invalid.
    pub fn ensure_line(&mut self, pa: PAddr) -> EnsureOutcome {
        self.tick += 1;
        let line = pa.line(self.line_bytes);
        if let Some(i) = self.find(line) {
            self.lines[i].as_mut().expect("occupied").last_use = self.tick;
            return EnsureOutcome {
                already_present: true,
                evicted: None,
            };
        }
        let set = self.set_of(line);
        // Prefer an empty way, else the LRU one.
        let slot = self
            .slot_range(set)
            .find(|&i| self.lines[i].is_none())
            .unwrap_or_else(|| {
                self.slot_range(set)
                    .min_by_key(|&i| self.lines[i].as_ref().expect("full set").last_use)
                    .expect("ways > 0")
            });
        let evicted = self.lines[slot].take().map(|e| EvictedLine {
            line: e.line,
            registered_words: self
                .stripe(slot)
                .iter()
                .enumerate()
                .filter(|(_, &w)| w == WordState::Registered)
                .map(|(i, _)| i)
                .collect(),
        });
        self.stripe_mut(slot).fill(WordState::Invalid);
        self.lines[slot] = Some(LineEntry {
            line,
            last_use: self.tick,
        });
        EnsureOutcome {
            already_present: false,
            evicted,
        }
    }

    /// Sets the state of the word at `pa`.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident — call [`DenovoCache::ensure_line`]
    /// first.
    pub fn set_word(&mut self, pa: PAddr, state: WordState) {
        let line = pa.line(self.line_bytes);
        let i = self
            .find(line)
            .unwrap_or_else(|| panic!("line {line} not resident"));
        let w = pa.word_in_line(self.line_bytes);
        self.stripe_mut(i)[w] = state;
    }

    /// Fills every currently Invalid word of `pa`'s resident line with
    /// `Shared` except the word indices in `skip` (words the LLC could not
    /// supply because another core has them registered). Returns how many
    /// words were filled.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn fill_line_shared(&mut self, pa: PAddr, skip: &[usize]) -> usize {
        let line = pa.line(self.line_bytes);
        let i = self
            .find(line)
            .unwrap_or_else(|| panic!("line {line} not resident"));
        let mut filled = 0;
        for (w, state) in self.stripe_mut(i).iter_mut().enumerate() {
            if *state == WordState::Invalid && !skip.contains(&w) {
                *state = WordState::Shared;
                filled += 1;
            }
        }
        filled
    }

    /// Kernel-boundary self-invalidation: Shared words drop to Invalid,
    /// Registered words are kept (§4.3). Tags stay resident.
    pub fn self_invalidate(&mut self) {
        let wpl = self.words_per_line;
        for (i, entry) in self.lines.iter().enumerate() {
            if entry.is_some() {
                for w in &mut self.words[i * wpl..(i + 1) * wpl] {
                    *w = w.after_self_invalidate();
                }
            }
        }
    }

    /// Downgrades a word in response to a remote request: the caller
    /// writes the data back; the local copy becomes `to` (Shared for a
    /// remote load, Invalid for a remote registration).
    ///
    /// Returns `true` if the word was Registered here (i.e. there was data
    /// to supply).
    pub fn downgrade_word(&mut self, pa: PAddr, to: WordState) -> bool {
        let line = pa.line(self.line_bytes);
        if let Some(i) = self.find(line) {
            let w = pa.word_in_line(self.line_bytes);
            let word = &mut self.stripe_mut(i)[w];
            let was_registered = *word == WordState::Registered;
            *word = to;
            return was_registered;
        }
        false
    }

    /// Every currently Registered word address, for teardown writebacks.
    pub fn registered_words(&self) -> Vec<PAddr> {
        let mut out = Vec::new();
        for (i, entry) in self.lines.iter().enumerate() {
            let Some(entry) = entry else { continue };
            for (w, &state) in self.stripe(i).iter().enumerate() {
                if state == WordState::Registered {
                    out.push(entry.line.word_addr(w));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of resident tags (for pollution/occupancy measurements).
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().flatten().count()
    }

    /// Serializes geometry, tag slots with LRU stamps, the word-state
    /// arena, and the LRU tick.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.sets);
        w.put_usize(self.ways);
        w.put_u64(self.line_bytes);
        w.put_usize(self.lines.len());
        for entry in &self.lines {
            match entry {
                None => w.put_u8(0),
                Some(e) => {
                    w.put_u8(1);
                    w.put_u64(e.line.0);
                    w.put_u64(e.last_use);
                }
            }
        }
        for &state in &self.words {
            w.put_u8(word_state_code(state));
        }
        w.put_u64(self.tick);
    }

    /// Restores a cache written by [`DenovoCache::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let corrupt = |detail: String| sim::SimError::CheckpointCorrupt {
            what: "denovo l1",
            detail,
        };
        let sets = r.take_usize()?;
        let ways = r.take_usize()?;
        let line_bytes = r.take_u64()?;
        if sets == 0 || ways == 0 || line_bytes == 0 || line_bytes % WORD_BYTES != 0 {
            return Err(corrupt(format!(
                "invalid geometry: sets {sets}, ways {ways}, line {line_bytes}"
            )));
        }
        let total_lines = r.take_usize()?;
        if total_lines != sets * ways {
            return Err(corrupt(format!(
                "{total_lines} tag slots for {sets} sets x {ways} ways"
            )));
        }
        let words_per_line = (line_bytes / WORD_BYTES) as usize;
        let mut lines = Vec::with_capacity(total_lines);
        for _ in 0..total_lines {
            lines.push(match r.take_u8()? {
                0 => None,
                1 => Some(LineEntry {
                    line: LineAddr(r.take_u64()?),
                    last_use: r.take_u64()?,
                }),
                v => return Err(corrupt(format!("unknown tag slot code {v}"))),
            });
        }
        let mut words = Vec::with_capacity(total_lines * words_per_line);
        for _ in 0..total_lines * words_per_line {
            words.push(word_state_from_code(r.take_u8()?)?);
        }
        Ok(Self {
            sets,
            ways,
            line_bytes,
            words_per_line,
            lines,
            words,
            tick: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DenovoCache {
        // 4 sets * 2 ways * 64 B = 512 B.
        DenovoCache::new(512, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.sets(), 4);
        assert_eq!(c.words_per_line(), 16);
    }

    #[test]
    fn cache_round_trips_through_snapshot() {
        let mut c = small();
        c.ensure_line(PAddr(0x1000));
        c.fill_line_shared(PAddr(0x1000), &[2]);
        c.set_word(PAddr(0x1004), WordState::Registered);
        c.ensure_line(PAddr(0x2000));
        c.fill_line_shared(PAddr(0x2000), &[]);
        c.touch(PAddr(0x2000));
        let mut w = sim::snapshot::Writer::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "denovo l1");
        let restored = DenovoCache::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.sets(), c.sets());
        assert_eq!(restored.resident_lines(), c.resident_lines());
        assert_eq!(restored.registered_words(), c.registered_words());
        for off in (0..64).step_by(4) {
            assert_eq!(
                restored.word_state(PAddr(0x1000 + off)),
                c.word_state(PAddr(0x1000 + off))
            );
        }
    }

    #[test]
    fn cache_load_rejects_slot_count_mismatch() {
        let c = small();
        let mut w = sim::snapshot::Writer::new();
        c.save(&mut w);
        let mut bytes = w.into_bytes();
        // Patch the serialized slot count (4th field, offset 8+8+8 = 24).
        bytes[24] = bytes[24].wrapping_add(1);
        let mut r = sim::snapshot::Reader::new(&bytes, "denovo l1");
        assert!(matches!(
            DenovoCache::load(&mut r),
            Err(sim::SimError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = PAddr(0x1000);
        assert_eq!(c.word_state(a), WordState::Invalid);
        let out = c.ensure_line(a);
        assert!(!out.already_present);
        assert!(out.evicted.is_none());
        c.fill_line_shared(a, &[]);
        assert_eq!(c.word_state(a), WordState::Shared);
        // Every word of the line is now Shared.
        assert_eq!(c.word_state(PAddr(0x103C)), WordState::Shared);
    }

    #[test]
    fn fill_skips_remotely_registered_words() {
        let mut c = small();
        let a = PAddr(0x1000);
        c.ensure_line(a);
        let filled = c.fill_line_shared(a, &[0, 3]);
        assert_eq!(filled, 14);
        assert_eq!(c.word_state(PAddr(0x1000)), WordState::Invalid);
        assert_eq!(c.word_state(PAddr(0x100C)), WordState::Invalid);
        assert_eq!(c.word_state(PAddr(0x1004)), WordState::Shared);
    }

    #[test]
    fn fill_does_not_clobber_registered() {
        let mut c = small();
        let a = PAddr(0x1000);
        c.ensure_line(a);
        c.set_word(a, WordState::Registered);
        c.fill_line_shared(a, &[]);
        assert_eq!(c.word_state(a), WordState::Registered);
    }

    #[test]
    fn conflict_eviction_reports_registered_words() {
        let mut c = small();
        // Lines 0x0000, 0x1000, 0x2000 all map to set 0 (4 sets * 64 B = 256 B stride).
        let a = PAddr(0x0000);
        let b = PAddr(0x1000);
        let d = PAddr(0x2000);
        c.ensure_line(a);
        c.set_word(a, WordState::Registered);
        c.set_word(PAddr(0x0004), WordState::Shared);
        c.ensure_line(b);
        let out = c.ensure_line(d);
        let ev = out.evicted.expect("two-way set must evict the LRU line");
        assert_eq!(ev.line, LineAddr(0x0000));
        assert_eq!(ev.registered_words, vec![0]);
        assert_eq!(c.word_state(a), WordState::Invalid);
    }

    #[test]
    fn lru_respects_touch() {
        let mut c = small();
        c.ensure_line(PAddr(0x0000));
        c.ensure_line(PAddr(0x1000));
        c.touch(PAddr(0x0000)); // make 0x1000 the LRU line
        let out = c.ensure_line(PAddr(0x2000));
        assert_eq!(out.evicted.expect("eviction").line, LineAddr(0x1000));
    }

    #[test]
    fn self_invalidate_keeps_registered() {
        let mut c = small();
        let a = PAddr(0x0000);
        let b = PAddr(0x0004);
        c.ensure_line(a);
        c.set_word(a, WordState::Registered);
        c.set_word(b, WordState::Shared);
        c.self_invalidate();
        assert_eq!(c.word_state(a), WordState::Registered);
        assert_eq!(c.word_state(b), WordState::Invalid);
    }

    #[test]
    fn downgrade_reports_prior_registration() {
        let mut c = small();
        let a = PAddr(0x0000);
        c.ensure_line(a);
        c.set_word(a, WordState::Registered);
        assert!(c.downgrade_word(a, WordState::Shared));
        assert_eq!(c.word_state(a), WordState::Shared);
        assert!(!c.downgrade_word(a, WordState::Invalid));
        // Downgrading a non-resident line is a no-op.
        assert!(!c.downgrade_word(PAddr(0x4000), WordState::Invalid));
    }

    #[test]
    fn registered_words_enumerates_sorted() {
        let mut c = small();
        c.ensure_line(PAddr(0x1000));
        c.set_word(PAddr(0x1008), WordState::Registered);
        c.ensure_line(PAddr(0x0040));
        c.set_word(PAddr(0x0040), WordState::Registered);
        assert_eq!(c.registered_words(), vec![PAddr(0x0040), PAddr(0x1008)]);
    }

    #[test]
    fn resident_lines_counts_allocations() {
        let mut c = small();
        assert_eq!(c.resident_lines(), 0);
        c.ensure_line(PAddr(0x0000));
        c.ensure_line(PAddr(0x0040));
        c.ensure_line(PAddr(0x0000));
        assert_eq!(c.resident_lines(), 2);
    }
}
