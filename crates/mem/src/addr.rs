//! Typed addresses.
//!
//! The stash design distinguishes three address spaces: the *stash/local*
//! space (a small direct offset), the *global virtual* space the program
//! names, and the *physical* space the LLC and registry operate on. Using
//! newtypes for the latter two makes it impossible to, say, index the
//! registry with a virtual address — the class of bug the VP-map exists to
//! prevent in hardware.

/// Bytes per word; the stash and DeNovo track coherence at this granularity.
pub const WORD_BYTES: u64 = 4;

/// A global *virtual* address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A global *physical* address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

/// A physical address of an aligned cache line (the tag+index part).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

macro_rules! addr_common {
    ($t:ty) => {
        impl $t {
            /// Byte offset within an `align`-byte aligned block.
            pub fn offset_in(self, align: u64) -> u64 {
                self.0 % align
            }

            /// This address rounded down to an `align`-byte boundary.
            pub fn align_down(self, align: u64) -> Self {
                Self(self.0 - self.0 % align)
            }

            /// The word index within a line of `line_bytes` bytes.
            pub fn word_in_line(self, line_bytes: u64) -> usize {
                ((self.0 % line_bytes) / WORD_BYTES) as usize
            }

            /// Adds a byte offset. (Named like arithmetic deliberately;
            /// addresses are not `std::ops::Add` — offsets are untyped.)
            #[allow(clippy::should_implement_trait)]
            pub fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }
        }

        impl std::fmt::Display for $t {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

addr_common!(VAddr);
addr_common!(PAddr);

impl VAddr {
    /// The virtual page number for `page_bytes` pages.
    pub fn page(self, page_bytes: u64) -> u64 {
        self.0 / page_bytes
    }
}

impl PAddr {
    /// The physical page (frame) number for `page_bytes` pages.
    pub fn frame(self, page_bytes: u64) -> u64 {
        self.0 / page_bytes
    }

    /// The aligned line containing this address.
    pub fn line(self, line_bytes: u64) -> LineAddr {
        LineAddr(self.0 - self.0 % line_bytes)
    }
}

impl LineAddr {
    /// The physical address of word `word` within this line.
    pub fn word_addr(self, word: usize) -> PAddr {
        PAddr(self.0 + word as u64 * WORD_BYTES)
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        let a = PAddr(0x1234);
        assert_eq!(a.align_down(64).0, 0x1200);
        assert_eq!(a.offset_in(64), 0x34);
        assert_eq!(a.word_in_line(64), 0x34 / 4);
    }

    #[test]
    fn line_and_word_round_trip() {
        let a = PAddr(0x1040 + 5 * WORD_BYTES);
        let line = a.line(64);
        assert_eq!(line.0, 0x1040);
        assert_eq!(line.word_addr(5), PAddr(a.0));
    }

    #[test]
    fn pages_and_frames() {
        assert_eq!(VAddr(0x2FFF).page(4096), 2);
        assert_eq!(VAddr(0x3000).page(4096), 3);
        assert_eq!(PAddr(0x7FFF).frame(4096), 7);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(VAddr(255).to_string(), "0xff");
        assert_eq!(LineAddr(64).to_string(), "0x40");
    }
}
