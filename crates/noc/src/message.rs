//! Message classes and flit segmentation.
//!
//! Figure 5d of the paper splits network traffic into three virtual-network
//! classes: **Read** (load requests and their data responses), **Write**
//! (store/registration requests and acknowledgements), and **Writeback**
//! (dirty data returning to the LLC). Messages are segmented into flits;
//! we follow Garnet's convention of a 16-byte flit, so a control message is
//! a single flit and a 64-byte cache line is a 5-flit packet (head + 4
//! data flits).

/// Virtual-network class of a message, matching Figure 5d's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Load requests and load-data responses.
    Read,
    /// Store and registration requests plus their acknowledgements.
    Write,
    /// Dirty-data writebacks to the LLC.
    Writeback,
}

impl MsgClass {
    /// All classes in Figure 5d order.
    pub const ALL: [MsgClass; 3] = [MsgClass::Read, MsgClass::Write, MsgClass::Writeback];

    /// Stable lowercase name used in counter keys.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Read => "read",
            MsgClass::Write => "write",
            MsgClass::Writeback => "writeback",
        }
    }
}

impl std::fmt::Display for MsgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Flit width in bytes (Garnet default).
pub const FLIT_BYTES: usize = 16;

/// A network message: a class plus a data payload size.
///
/// Control information (address, opcode, stash-map index) rides in the head
/// flit; `payload_bytes` counts only data words being carried.
///
/// # Example
///
/// ```
/// use noc::message::{Message, MsgClass};
///
/// // A load request carries no data: one flit.
/// assert_eq!(Message::control(MsgClass::Read).flits(), 1);
/// // A full 64-byte line response: head + 4 data flits.
/// assert_eq!(Message::data(MsgClass::Read, 64).flits(), 5);
/// // A single-word stash response: head + 1 data flit.
/// assert_eq!(Message::data(MsgClass::Read, 4).flits(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    class: MsgClass,
    payload_bytes: usize,
}

impl Message {
    /// A control-only message (request or acknowledgement).
    pub fn control(class: MsgClass) -> Self {
        Self {
            class,
            payload_bytes: 0,
        }
    }

    /// A message carrying `payload_bytes` of data.
    pub fn data(class: MsgClass, payload_bytes: usize) -> Self {
        Self {
            class,
            payload_bytes,
        }
    }

    /// The message's virtual-network class.
    pub fn class(self) -> MsgClass {
        self.class
    }

    /// Data payload size in bytes.
    pub fn payload_bytes(self) -> usize {
        self.payload_bytes
    }

    /// Number of flits: one head flit plus enough data flits for the
    /// payload.
    pub fn flits(self) -> u64 {
        1 + (self.payload_bytes.div_ceil(FLIT_BYTES)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_message_is_one_flit() {
        for class in MsgClass::ALL {
            assert_eq!(Message::control(class).flits(), 1);
        }
    }

    #[test]
    fn payload_rounds_up_to_flits() {
        assert_eq!(Message::data(MsgClass::Writeback, 1).flits(), 2);
        assert_eq!(Message::data(MsgClass::Writeback, 16).flits(), 2);
        assert_eq!(Message::data(MsgClass::Writeback, 17).flits(), 3);
        assert_eq!(Message::data(MsgClass::Writeback, 64).flits(), 5);
    }

    #[test]
    fn word_response_is_much_smaller_than_line() {
        // The stash's word-granularity transfers are the traffic advantage
        // the paper leans on: 2 flits vs 5 flits per response.
        let word = Message::data(MsgClass::Read, 4).flits();
        let line = Message::data(MsgClass::Read, 64).flits();
        assert!(word * 2 < line);
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(MsgClass::Read.name(), "read");
        assert_eq!(MsgClass::Write.name(), "write");
        assert_eq!(MsgClass::Writeback.name(), "writeback");
    }
}
