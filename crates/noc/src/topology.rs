//! Mesh topology: node identity, coordinates, and XY routing distance.

/// Identifies one node of the mesh.
///
/// Nodes are numbered row-major: node `y * side + x` sits at `(x, y)`.
/// Every node hosts one L2 bank and either a CPU core or a GPU CU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A square 2-D mesh with deterministic XY (dimension-ordered) routing.
///
/// # Example
///
/// ```
/// use noc::topology::{Mesh, NodeId};
///
/// let mesh = Mesh::new(4);
/// assert_eq!(mesh.nodes(), 16);
/// assert_eq!(mesh.hops(NodeId(5), NodeId(5)), 0);
/// assert_eq!(mesh.hops(NodeId(0), NodeId(3)), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    side: usize,
}

impl Mesh {
    /// Creates a `side × side` mesh.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero.
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "mesh side must be nonzero");
        Self { side }
    }

    /// Side length of the mesh.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total node count (`side`²).
    pub fn nodes(&self) -> usize {
        self.side * self.side
    }

    /// `(x, y)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(node.0 < self.nodes(), "node {node} outside {self:?}");
        (node.0 % self.side, node.0 / self.side)
    }

    /// The node at coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is outside the mesh.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.side && y < self.side, "({x},{y}) outside mesh");
        NodeId(y * self.side + x)
    }

    /// Manhattan (XY-routed) hop count between two nodes.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u64 {
        let (x, y) = self.hops_xy(from, to);
        x + y
    }

    /// Per-dimension hop counts `(x_hops, y_hops)` of the XY route —
    /// the split an asymmetric-latency mesh charges differently.
    pub fn hops_xy(&self, from: NodeId, to: NodeId) -> (u64, u64) {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        (fx.abs_diff(tx) as u64, fy.abs_diff(ty) as u64)
    }

    /// Maximum hop count between any two nodes (`2 * (side - 1)`).
    pub fn max_hops(&self) -> u64 {
        2 * (self.side as u64 - 1)
    }

    /// The sequence of nodes an XY-routed message visits, inclusive of both
    /// endpoints (X dimension first, then Y — Garnet's default).
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let mut path = vec![from];
        let (mut x, mut y) = (fx, fy);
        while x != tx {
            x = if tx > x { x + 1 } else { x - 1 };
            path.push(self.node_at(x, y));
        }
        while y != ty {
            y = if ty > y { y + 1 } else { y - 1 };
            path.push(self.node_at(x, y));
        }
        path
    }

    /// Iterates over all nodes in index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every side the DSE sweep reaches; the invariants below must hold
    /// at all of them, not just the paper's 4.
    const SIDES: std::ops::RangeInclusive<usize> = 1..=8;

    #[test]
    fn coords_round_trip() {
        for side in SIDES {
            let mesh = Mesh::new(side);
            assert_eq!(mesh.nodes(), side * side);
            for node in mesh.iter() {
                let (x, y) = mesh.coords(node);
                assert_eq!(mesh.node_at(x, y), node);
            }
        }
    }

    #[test]
    fn hops_are_symmetric_and_triangle() {
        for side in SIDES {
            let mesh = Mesh::new(side);
            for a in mesh.iter() {
                for b in mesh.iter() {
                    assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
                    let (hx, hy) = mesh.hops_xy(a, b);
                    assert_eq!(mesh.hops_xy(b, a), (hx, hy));
                    assert_eq!(hx + hy, mesh.hops(a, b));
                    for c in mesh.iter() {
                        assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
                    }
                }
            }
        }
    }

    #[test]
    fn max_hops_matches_corners() {
        for side in SIDES {
            let mesh = Mesh::new(side);
            assert_eq!(mesh.max_hops(), 2 * (side as u64 - 1));
            // Opposite corners realize the bound; nothing exceeds it.
            let far = NodeId(side * side - 1);
            assert_eq!(mesh.hops(NodeId(0), far), mesh.max_hops());
            for a in mesh.iter() {
                for b in mesh.iter() {
                    assert!(mesh.hops(a, b) <= mesh.max_hops());
                }
            }
        }
        assert_eq!(Mesh::new(4).hops(NodeId(3), NodeId(12)), 6);
    }

    #[test]
    fn route_length_matches_hops() {
        for side in SIDES {
            let mesh = Mesh::new(side);
            for a in mesh.iter() {
                for b in mesh.iter() {
                    let route = mesh.route(a, b);
                    assert_eq!(route.len() as u64, mesh.hops(a, b) + 1);
                    assert_eq!(*route.first().unwrap(), a);
                    assert_eq!(*route.last().unwrap(), b);
                }
            }
        }
    }

    #[test]
    fn route_is_x_first() {
        let mesh = Mesh::new(4);
        let route = mesh.route(NodeId(0), NodeId(5)); // (0,0) -> (1,1)
        assert_eq!(route, vec![NodeId(0), NodeId(1), NodeId(5)]);
    }

    #[test]
    fn first_out_of_range_node_panics_at_every_side() {
        for side in SIDES {
            let mesh = Mesh::new(side);
            let bad = NodeId(mesh.nodes());
            let caught = std::panic::catch_unwind(|| mesh.coords(bad));
            assert!(caught.is_err(), "side {side}: {bad} must be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coords_panics_out_of_mesh() {
        Mesh::new(2).coords(NodeId(4));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_side_mesh_panics() {
        Mesh::new(0);
    }
}
