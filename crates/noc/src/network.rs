//! The network: latency formulas and flit-crossing accounting.

use crate::message::{Message, MsgClass};
use crate::topology::{Mesh, NodeId};
use sim::fault::{FaultInjector, MessageFate};
use sim::trace::{TraceEvent, TraceSink};

/// What happened to one send attempt under fault injection — the
/// sender-visible outcome of [`Network::send_faulty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Clean delivery after the usual one-way latency.
    Delivered {
        /// One-way latency in cycles.
        latency: u64,
    },
    /// Delivered, but `extra` cycles late.
    Delayed {
        /// One-way latency in cycles.
        latency: u64,
        /// Injected extra delay in cycles.
        extra: u64,
    },
    /// Delivered twice with the same sequence number; the receiver must
    /// suppress the duplicate.
    Duplicated {
        /// One-way latency in cycles.
        latency: u64,
    },
    /// Lost in the network; the sender's timeout machinery must notice.
    Dropped,
}

/// Identity of one send attempt for the fault injector's draw stream
/// and event trace: the protocol site, the message's sequence number,
/// and the 1-based attempt count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Protocol site issuing the send (e.g. `"cache.load"`).
    pub site: &'static str,
    /// Per-machine message sequence number.
    pub seq: u64,
    /// 1-based attempt count (retries increment it).
    pub attempt: u32,
}

/// Per-class traffic totals, the quantity plotted in Figure 5d.
///
/// A *flit crossing* is one flit traversing one link; a 5-flit line-fill
/// response travelling 3 hops contributes 15 crossings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    crossings: [u64; 3],
    messages: [u64; 3],
    flits: [u64; 3],
}

impl TrafficStats {
    /// Creates an empty traffic tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flit crossings recorded for one class.
    pub fn crossings(&self, class: MsgClass) -> u64 {
        self.crossings[Self::idx(class)]
    }

    /// Messages recorded for one class.
    pub fn messages(&self, class: MsgClass) -> u64 {
        self.messages[Self::idx(class)]
    }

    /// Total flit crossings over all classes.
    pub fn total_crossings(&self) -> u64 {
        self.crossings.iter().sum()
    }

    /// Total messages over all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Flits recorded for one class (hop-independent: a message's flits
    /// count once, so this measures injection-port occupancy).
    pub fn flits(&self, class: MsgClass) -> u64 {
        self.flits[Self::idx(class)]
    }

    /// Total flits over all classes.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..3 {
            self.crossings[i] += other.crossings[i];
            self.messages[i] += other.messages[i];
            self.flits[i] += other.flits[i];
        }
    }

    fn idx(class: MsgClass) -> usize {
        match class {
            MsgClass::Read => 0,
            MsgClass::Write => 1,
            MsgClass::Writeback => 2,
        }
    }

    fn record(&mut self, class: MsgClass, crossings: u64, flits: u64) {
        self.crossings[Self::idx(class)] += crossings;
        self.messages[Self::idx(class)] += 1;
        self.flits[Self::idx(class)] += flits;
    }

    /// Serializes the three per-class tallies.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        for i in 0..3 {
            w.put_u64(self.crossings[i]);
            w.put_u64(self.messages[i]);
            w.put_u64(self.flits[i]);
        }
    }

    /// Restores a tally written by [`TrafficStats::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let mut t = Self::default();
        for i in 0..3 {
            t.crossings[i] = r.take_u64()?;
            t.messages[i] = r.take_u64()?;
            t.flits[i] = r.take_u64()?;
        }
        Ok(t)
    }
}

/// The on-chip network: a mesh plus per-hop latency and traffic accounting.
///
/// Latency model: a full request/response round trip between two nodes
/// costs `x_hops * hop_x + y_hops * hop_y` (the two dimensions may be
/// clocked differently — [`Network::with_latencies`]; the symmetric
/// [`Network::new`] sets both to the same cost, reducing to the classic
/// `hops * hop_round_trip_cycles`). A one-way message costs half the
/// round trip, rounded up. Queueing/contention inside routers is not
/// modelled — the paper's traffic effects come from message counts and
/// sizes, which are accounted exactly.
///
/// # Example
///
/// ```
/// use noc::{Mesh, Message, MsgClass, Network, NodeId};
///
/// let mut net = Network::new(Mesh::new(4), 5);
/// let lat = net.send(NodeId(0), NodeId(3), Message::data(MsgClass::Read, 64));
/// assert_eq!(lat, 8); // ceil(3 hops * 5 / 2)
/// assert_eq!(net.traffic().crossings(MsgClass::Read), 15); // 5 flits * 3 hops
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    hop_x_round_trip_cycles: u64,
    hop_y_round_trip_cycles: u64,
    traffic: TrafficStats,
    /// Flit traversals through each node's router (hotspot analysis).
    router_flits: Vec<u64>,
}

impl Network {
    /// Creates a network over `mesh` with the given per-hop round-trip cost
    /// (the same in both dimensions).
    pub fn new(mesh: Mesh, hop_round_trip_cycles: u64) -> Self {
        Self::with_latencies(mesh, hop_round_trip_cycles, hop_round_trip_cycles)
    }

    /// Creates a network whose X and Y links carry different per-hop
    /// round-trip costs (e.g. a mesh with wider/faster row links).
    pub fn with_latencies(mesh: Mesh, hop_x: u64, hop_y: u64) -> Self {
        let nodes = mesh.nodes();
        Self {
            mesh,
            hop_x_round_trip_cycles: hop_x,
            hop_y_round_trip_cycles: hop_y,
            traffic: TrafficStats::new(),
            router_flits: vec![0; nodes],
        }
    }

    /// Round-trip cost of the XY path between two nodes, split by
    /// dimension — the shared kernel of the latency formulas.
    fn path_round_trip(&self, a: NodeId, b: NodeId) -> u64 {
        let (hx, hy) = self.mesh.hops_xy(a, b);
        hx * self.hop_x_round_trip_cycles + hy * self.hop_y_round_trip_cycles
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Accumulated traffic tally.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Resets the traffic tally (e.g. between experiment phases).
    pub fn reset_traffic(&mut self) {
        self.traffic = TrafficStats::new();
    }

    /// Resets *all* accounting — traffic tally and per-router flit
    /// profile — e.g. when forking a shard network whose accounting will
    /// later be [`Network::absorb`]ed back.
    pub fn reset_accounting(&mut self) {
        self.traffic = TrafficStats::new();
        self.router_flits.fill(0);
    }

    /// Adds another network's accounting (traffic tally and router flit
    /// profile) into this one. The meshes must have the same node count.
    ///
    /// # Panics
    ///
    /// Panics if the router profiles differ in length.
    pub fn absorb(&mut self, other: &Network) {
        assert_eq!(
            self.router_flits.len(),
            other.router_flits.len(),
            "absorbing a network of a different mesh size"
        );
        self.traffic.merge(&other.traffic);
        for (mine, theirs) in self.router_flits.iter_mut().zip(&other.router_flits) {
            *mine += theirs;
        }
    }

    /// Round-trip network latency between two nodes (no message recorded).
    pub fn round_trip_cycles(&self, a: NodeId, b: NodeId) -> u64 {
        self.path_round_trip(a, b)
    }

    /// One-way network latency between two nodes (no message recorded).
    pub fn one_way_cycles(&self, a: NodeId, b: NodeId) -> u64 {
        self.path_round_trip(a, b).div_ceil(2)
    }

    /// Sends a message, recording its flit crossings, and returns the
    /// one-way latency in cycles.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: Message) -> u64 {
        let hops = self.mesh.hops(from, to);
        self.traffic
            .record(msg.class(), msg.flits() * hops, msg.flits());
        // Every router on the XY path sees the message's flits.
        for node in self.mesh.route(from, to) {
            self.router_flits[node.0] += msg.flits();
        }
        self.path_round_trip(from, to).div_ceil(2)
    }

    /// Emits one [`sim::trace::TraceEvent::NocHop`] per link of the XY
    /// route a [`Network::send`] of `msg` would take, stamped with the
    /// sink's current time — the per-link occupancy view of the trace.
    /// Accounting-free: traffic tallies and latency are untouched, so a
    /// traced run stays bit-identical to an untraced one.
    pub fn trace_hops(&self, from: NodeId, to: NodeId, msg: Message, sink: &mut TraceSink) {
        let at = sink.now();
        let flits = msg.flits();
        let class = match msg.class() {
            MsgClass::Read => 0u8,
            MsgClass::Write => 1,
            MsgClass::Writeback => 2,
        };
        let route = self.mesh.route(from, to);
        for pair in route.windows(2) {
            sink.push(TraceEvent::NocHop {
                from: pair[0].0 as u32,
                to: pair[1].0 as u32,
                at,
                flits,
                class,
            });
        }
    }

    /// Sends one *attempt* of a message through a fault injector.
    ///
    /// The injector decides the attempt's fate (drop / duplicate / delay /
    /// clean delivery); the network accounts the flits that actually
    /// entered it — a dropped message still crossed routers up to the
    /// fault point (we charge the full path, a deliberate worst-case), and
    /// a duplicated message is charged twice. Retry policy is the
    /// *sender's* job: the caller inspects the returned [`Delivery`] and
    /// re-sends after a timeout if its protocol calls for it.
    pub fn send_faulty(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Message,
        inj: &mut FaultInjector,
        attempt: Attempt,
    ) -> Delivery {
        let latency = self.send(from, to, msg);
        match inj.message_fate(attempt.site, attempt.seq, attempt.attempt) {
            MessageFate::Delivered => Delivery::Delivered { latency },
            MessageFate::Delayed(extra) => Delivery::Delayed { latency, extra },
            MessageFate::Duplicated => {
                // The duplicate traverses the network too.
                let _ = self.send(from, to, msg);
                Delivery::Duplicated { latency }
            }
            MessageFate::Dropped => Delivery::Dropped,
        }
    }

    /// Flit traversals through each node's router, in node order — the
    /// hotspot profile of the run (XY routing concentrates turns, so the
    /// LLC home banks of hot lines light up here).
    pub fn router_flit_profile(&self) -> &[u64] {
        &self.router_flits
    }

    /// The busiest router and its flit count.
    pub fn hotspot(&self) -> (NodeId, u64) {
        let (i, &v) = self
            .router_flits
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("meshes have at least one node");
        (NodeId(i), v)
    }

    /// Serializes the mesh geometry, latency parameters, and all
    /// accounting. The network is purely a latency/accounting model — no
    /// in-flight message queues exist, so a barrier-time snapshot captures
    /// it completely.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.mesh.side());
        w.put_u64(self.hop_x_round_trip_cycles);
        w.put_u64(self.hop_y_round_trip_cycles);
        self.traffic.save(w);
        w.put_usize(self.router_flits.len());
        for &f in &self.router_flits {
            w.put_u64(f);
        }
    }

    /// Restores a network written by [`Network::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let corrupt = |detail: String| sim::SimError::CheckpointCorrupt {
            what: "network",
            detail,
        };
        let side = r.take_usize()?;
        if side == 0 {
            return Err(corrupt("zero-sided mesh".into()));
        }
        let mesh = Mesh::new(side);
        let hop_x = r.take_u64()?;
        let hop_y = r.take_u64()?;
        let traffic = TrafficStats::load(r)?;
        let n = r.take_usize()?;
        if n != mesh.nodes() {
            return Err(corrupt(format!(
                "{n} router tallies for a {side}x{side} mesh"
            )));
        }
        let mut router_flits = Vec::with_capacity(n);
        for _ in 0..n {
            router_flits.push(r.take_u64()?);
        }
        Ok(Self {
            mesh,
            hop_x_round_trip_cycles: hop_x,
            hop_y_round_trip_cycles: hop_y,
            traffic,
            router_flits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(Mesh::new(4), 5)
    }

    #[test]
    fn same_node_send_is_free() {
        let mut n = net();
        let lat = n.send(NodeId(3), NodeId(3), Message::control(MsgClass::Write));
        assert_eq!(lat, 0);
        assert_eq!(n.traffic().crossings(MsgClass::Write), 0);
        // The message itself is still counted.
        assert_eq!(n.traffic().messages(MsgClass::Write), 1);
    }

    #[test]
    fn crossings_scale_with_hops_and_flits() {
        let mut n = net();
        n.send(
            NodeId(0),
            NodeId(15),
            Message::data(MsgClass::Writeback, 64),
        );
        // 5 flits * 6 hops.
        assert_eq!(n.traffic().crossings(MsgClass::Writeback), 30);
    }

    #[test]
    fn classes_are_tallied_separately() {
        let mut n = net();
        n.send(NodeId(0), NodeId(1), Message::control(MsgClass::Read));
        n.send(NodeId(0), NodeId(1), Message::control(MsgClass::Write));
        n.send(NodeId(0), NodeId(1), Message::data(MsgClass::Writeback, 4));
        let t = n.traffic();
        assert_eq!(t.crossings(MsgClass::Read), 1);
        assert_eq!(t.crossings(MsgClass::Write), 1);
        assert_eq!(t.crossings(MsgClass::Writeback), 2);
        assert_eq!(t.total_messages(), 3);
    }

    #[test]
    fn two_one_ways_cover_a_round_trip() {
        let n = net();
        for a in n.mesh().iter() {
            for b in n.mesh().iter() {
                let rt = n.round_trip_cycles(a, b);
                let ow = n.one_way_cycles(a, b);
                assert!(2 * ow >= rt && 2 * ow <= rt + 1);
            }
        }
    }

    #[test]
    fn asymmetric_latencies_split_by_dimension() {
        let n = Network::with_latencies(Mesh::new(4), 3, 7);
        // (0,0) -> (2,1): 2 X hops * 3 + 1 Y hop * 7 = 13 round trip.
        assert_eq!(n.round_trip_cycles(NodeId(0), NodeId(6)), 13);
        assert_eq!(n.one_way_cycles(NodeId(0), NodeId(6)), 7);
        for a in n.mesh().iter() {
            for b in n.mesh().iter() {
                // Latency stays symmetric even with unequal dimensions.
                assert_eq!(n.round_trip_cycles(a, b), n.round_trip_cycles(b, a));
            }
        }
        // Equal costs reduce to the classic hops * cost formula.
        let sym = Network::with_latencies(Mesh::new(4), 5, 5);
        let plain = net();
        for a in sym.mesh().iter() {
            for b in sym.mesh().iter() {
                assert_eq!(sym.round_trip_cycles(a, b), plain.round_trip_cycles(a, b));
                assert_eq!(sym.one_way_cycles(a, b), plain.one_way_cycles(a, b));
            }
        }
    }

    #[test]
    fn merge_accumulates_tallies() {
        let mut a = TrafficStats::new();
        a.record(MsgClass::Read, 10, 2);
        let mut b = TrafficStats::new();
        b.record(MsgClass::Read, 5, 1);
        b.record(MsgClass::Write, 2, 1);
        a.merge(&b);
        assert_eq!(a.crossings(MsgClass::Read), 15);
        assert_eq!(a.crossings(MsgClass::Write), 2);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.total_flits(), 4);
    }

    #[test]
    fn router_profile_follows_the_route() {
        let mut n = net();
        // (0,0) -> (3,0): routers 0,1,2,3 each see the message's flits.
        n.send(NodeId(0), NodeId(3), Message::data(MsgClass::Read, 16));
        let profile = n.router_flit_profile();
        assert_eq!(&profile[0..4], &[2, 2, 2, 2]);
        assert!(profile[4..].iter().all(|&v| v == 0));
        assert_eq!(n.hotspot().1, 2);
    }

    #[test]
    fn faulty_send_charges_traffic_per_attempt() {
        use sim::fault::FaultConfig;

        // Quiescent injector: identical to a plain send.
        let mut clean = net();
        let mut inj = FaultInjector::new(FaultConfig::quiescent(1));
        let d = clean.send_faulty(
            NodeId(0),
            NodeId(3),
            Message::control(MsgClass::Read),
            &mut inj,
            Attempt {
                site: "test",
                seq: 1,
                attempt: 1,
            },
        );
        assert_eq!(d, Delivery::Delivered { latency: 8 });
        assert_eq!(clean.traffic().flits(MsgClass::Read), 1);

        // Certain duplication: the duplicate is charged too.
        let mut dup = net();
        let mut inj = FaultInjector::new(FaultConfig {
            drop_per_mille: 0,
            dup_per_mille: 1000,
            ..FaultConfig::chaos(1)
        });
        let d = dup.send_faulty(
            NodeId(0),
            NodeId(3),
            Message::control(MsgClass::Read),
            &mut inj,
            Attempt {
                site: "test",
                seq: 1,
                attempt: 1,
            },
        );
        assert_eq!(d, Delivery::Duplicated { latency: 8 });
        assert_eq!(dup.traffic().flits(MsgClass::Read), 2);

        // Certain drop: flits entered the network before the loss.
        let mut drop = net();
        let mut inj = FaultInjector::new(FaultConfig {
            drop_per_mille: 1000,
            ..FaultConfig::chaos(1)
        });
        let d = drop.send_faulty(
            NodeId(0),
            NodeId(3),
            Message::control(MsgClass::Read),
            &mut inj,
            Attempt {
                site: "test",
                seq: 1,
                attempt: 1,
            },
        );
        assert_eq!(d, Delivery::Dropped);
        assert_eq!(drop.traffic().flits(MsgClass::Read), 1);
    }

    #[test]
    fn trace_hops_emits_one_event_per_link() {
        let n = net();
        let mut sink = TraceSink::new(64);
        sink.set_now(42);
        n.trace_hops(
            NodeId(0),
            NodeId(5),
            Message::data(MsgClass::Read, 16),
            &mut sink,
        );
        // XY route (0,0)→(1,0)→(1,1): two links, stamped with "now".
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            TraceEvent::NocHop {
                from: 0,
                to: 1,
                at: 42,
                flits: 2,
                class: 0,
            }
        );
        assert_eq!(
            events[1],
            TraceEvent::NocHop {
                from: 1,
                to: 5,
                at: 42,
                flits: 2,
                class: 0,
            }
        );
        // Same-node sends cross no link and emit nothing.
        let mut empty = TraceSink::new(4);
        n.trace_hops(
            NodeId(3),
            NodeId(3),
            Message::control(MsgClass::Write),
            &mut empty,
        );
        assert!(empty.is_empty());
        // Accounting is untouched.
        assert_eq!(n.traffic().total_messages(), 0);
    }

    #[test]
    fn network_round_trips_through_snapshot() {
        let mut n = Network::with_latencies(Mesh::new(4), 3, 7);
        n.send(NodeId(0), NodeId(15), Message::data(MsgClass::Read, 64));
        n.send(NodeId(2), NodeId(9), Message::control(MsgClass::Write));
        let mut w = sim::snapshot::Writer::new();
        n.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "network");
        let restored = Network::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.mesh().side(), 4);
        assert_eq!(restored.traffic(), n.traffic());
        assert_eq!(restored.router_flit_profile(), n.router_flit_profile());
        assert_eq!(
            restored.round_trip_cycles(NodeId(0), NodeId(6)),
            n.round_trip_cycles(NodeId(0), NodeId(6))
        );
    }

    #[test]
    fn network_load_rejects_router_tally_mismatch() {
        let n = net();
        let mut w = sim::snapshot::Writer::new();
        n.save(&mut w);
        let mut bytes = w.into_bytes();
        // Patch the mesh side (first field) from 4 to 5.
        bytes[0] = 5;
        let mut r = sim::snapshot::Reader::new(&bytes, "network");
        assert!(matches!(
            Network::load(&mut r),
            Err(sim::SimError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn reset_clears_traffic() {
        let mut n = net();
        n.send(NodeId(0), NodeId(2), Message::control(MsgClass::Read));
        n.reset_traffic();
        assert_eq!(n.traffic().total_crossings(), 0);
        assert_eq!(n.traffic().total_messages(), 0);
    }
}
