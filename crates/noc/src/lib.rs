//! Network-on-chip model: a Garnet-style 2-D mesh.
//!
//! The paper connects the CPU cores, GPU CUs and the 16 banks of the shared
//! NUCA L2 with a 4×4 mesh simulated by Garnet. Figure 5d reports network
//! traffic as *flit crossings* — the number of link traversals made by every
//! flit of every message — split by message class (Read, Write, Writeback).
//!
//! This crate reproduces exactly that accounting:
//!
//! * [`topology::Mesh`] — node coordinates, XY routing, hop counts;
//! * [`message`] — message classes and flit segmentation (control-sized
//!   requests, word- or line-sized data payloads);
//! * [`network::Network`] — latency formulas plus per-class flit-crossing
//!   counters and an energy hook for the McPAT-style NoC energy model.
//!
//! # Example
//!
//! ```
//! use noc::topology::{Mesh, NodeId};
//!
//! let mesh = Mesh::new(4);
//! let hops = mesh.hops(NodeId(0), NodeId(15)); // corner to corner
//! assert_eq!(hops, 6);
//! ```

#![forbid(unsafe_code)]

pub mod message;
pub mod network;
pub mod topology;

pub use message::{Message, MsgClass};
pub use network::{Attempt, Delivery, Network, TrafficStats};
pub use topology::{Mesh, NodeId};
